//===- simtvec/runtime/Runtime.h - Host-side API ----------------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-facing API, playing the role of the CUDA Runtime front-end in
/// the paper (§3): register a module, allocate device memory, copy data,
/// launch kernels — synchronously or on asynchronous streams — and read
/// back statistics.
///
/// Blocking usage (validated, checked):
/// \code
///   Device Dev;
///   auto Prog = Program::compile(SvirText);
///   uint64_t A = Dev.alloc(N * 4);
///   Dev.copyToDevice(A, Host.data(), N * 4);
///   Params P;
///   P.u64(A).u32(N); // element types are validated against .param decls
///   auto Stats = Prog->launch(Dev, "vecadd", {Blocks}, {256}, P);
/// \endcode
///
/// Asynchronous usage (in-order per stream, concurrent across streams, all
/// work runs on the persistent process-wide WorkerPool):
/// \code
///   Stream S;
///   Dev.copyToDeviceAsync(S, A, Host.data(), N * 4);
///   LaunchFuture F = Prog->launchAsync(S, Dev, "vecadd", {Blocks}, {256}, P);
///   Dev.copyFromDeviceAsync(S, Out.data(), A, N * 4);
///   if (Status E = S.synchronize(); E.isError())  // first deferred error
///     report(E.message());
///   auto Stats = F.get(); // this launch's Expected<LaunchStats>
/// \endcode
///
/// The blocking `launch` is a thin wrapper over `launchAsync` + stream
/// synchronization and returns bit-identical `LaunchStats` (modeled
/// counters included) to a direct engine invocation.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_RUNTIME_RUNTIME_H
#define SIMTVEC_RUNTIME_RUNTIME_H

#include "simtvec/core/ExecutionManager.h"
#include "simtvec/core/SpecializationService.h"
#include "simtvec/ir/Module.h"
#include "simtvec/ir/Type.h"
#include "simtvec/runtime/Stream.h"
#include "simtvec/support/Branch.h"

#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace simtvec {

/// A device: a flat, bounds-checked global-memory arena. "Device pointers"
/// are byte offsets into the arena and are passed to kernels as .u64
/// parameters.
///
/// Every memory operation has a checked form (`tryAlloc`, `tryCopyToDevice`,
/// `tryCopyFromDevice`, `tryMemset`) returning `Expected`/`Status` with
/// full bounds diagnostics (offset, size, arena size), and a convenience
/// form that aborts with the same diagnostic on failure — out-of-range host
/// copies are never silently clamped or compiled away. Allocation is
/// thread-safe; concurrent copies to disjoint ranges are safe, concurrent
/// access to overlapping ranges is the caller's responsibility (as on a
/// real device).
class Device {
public:
  /// Creates a device with \p GlobalBytes of global memory.
  explicit Device(size_t GlobalBytes = 64ull << 20);

  /// Allocates \p Bytes (16-byte aligned); returns the device address or
  /// an out-of-memory error with the arena accounting. Address 0 is never
  /// returned (it backs null-pointer checks).
  Expected<uint64_t> tryAlloc(size_t Bytes);

  Status tryCopyToDevice(uint64_t Dst, const void *Src, size_t Bytes);
  Status tryCopyFromDevice(void *Dst, uint64_t Src, size_t Bytes) const;
  Status tryMemset(uint64_t Dst, int Value, size_t Bytes);

  /// Convenience forms: abort with the bounds diagnostic on failure.
  uint64_t alloc(size_t Bytes);
  void copyToDevice(uint64_t Dst, const void *Src, size_t Bytes);
  void copyFromDevice(void *Dst, uint64_t Src, size_t Bytes) const;
  void memset(uint64_t Dst, int Value, size_t Bytes);

  /// Asynchronous copies: enqueued on \p S, executed in stream order. The
  /// host buffer must stay valid until the stream reaches the op. Bounds
  /// errors become the stream's deferred error (see Stream::synchronize).
  void copyToDeviceAsync(Stream &S, uint64_t Dst, const void *Src,
                         size_t Bytes);
  void copyFromDeviceAsync(Stream &S, void *Dst, uint64_t Src,
                           size_t Bytes) const;

  /// Typed helpers.
  template <typename T> uint64_t allocArray(size_t Count) {
    return alloc(Count * sizeof(T));
  }
  template <typename T>
  void upload(uint64_t Dst, const std::vector<T> &Host) {
    copyToDevice(Dst, Host.data(), Host.size() * sizeof(T));
  }
  template <typename T>
  std::vector<T> download(uint64_t Src, size_t Count) const {
    std::vector<T> Host(Count);
    copyFromDevice(Host.data(), Src, Count * sizeof(T));
    return Host;
  }

  std::byte *data() { return Arena.data(); }
  size_t size() const { return Arena.size(); }
  AtomicStripes &atomics() { return Atomics; }

  /// Bytes currently allocated out of the arena (bump-pointer position,
  /// including alignment padding; the 16 reserved null-guard bytes count).
  size_t used() const;

  /// Releases every allocation: the bump pointer returns to its initial
  /// position and the live-allocation count to zero. All previously
  /// returned device addresses become invalid (the arena contents are NOT
  /// cleared — stale reads see old bytes, as on a real device). The device
  /// has no free(); long-running hosts reset between independent phases.
  void reset();

private:
  std::vector<std::byte> Arena;
  mutable std::mutex AllocM;
  size_t Break = 16;      // address 0..15 reserved
  size_t AllocCount = 0;  // live allocations (diagnostics)
  AtomicStripes Atomics;
};

/// Serializes kernel parameters with the same natural-alignment layout the
/// kernel's .param declarations use, recording each element's SVIR type.
/// At launch the recorded signature is validated against the kernel's
/// .param list: arity, per-parameter type compatibility (same size and
/// numeric family; signedness is interchangeable, as in SVIR registers),
/// and byte offsets (alignment) — a mismatch is a descriptive Status error
/// instead of the kernel reading garbage. Elements beyond the declared
/// signature are permitted: the .param space doubles as constant memory,
/// and workloads append ld.param-addressed payloads (filter taps, atom
/// tables) after the named parameters.
class Params {
public:
  /// One serialized element.
  struct Element {
    Type Ty;
    uint32_t Offset;
  };

  Params &u32(uint32_t V) { return append(Type::u32(), &V, sizeof(V)); }
  Params &s32(int32_t V) { return append(Type::s32(), &V, sizeof(V)); }
  Params &u64(uint64_t V) { return append(Type::u64(), &V, sizeof(V)); }
  Params &s64(int64_t V) { return append(Type::s64(), &V, sizeof(V)); }
  Params &f32(float V) { return append(Type::f32(), &V, sizeof(V)); }
  Params &f64(double V) { return append(Type::f64(), &V, sizeof(V)); }

  const std::vector<std::byte> &bytes() const { return Buffer; }
  const std::vector<Element> &elements() const { return Elements; }

private:
  Params &append(Type Ty, const void *Src, size_t Bytes) {
    size_t Offset = (Buffer.size() + Bytes - 1) / Bytes * Bytes;
    Buffer.resize(Offset + Bytes);
    std::memcpy(Buffer.data() + Offset, Src, Bytes);
    Elements.push_back({Ty, static_cast<uint32_t>(Offset)});
    return *this;
  }
  std::vector<std::byte> Buffer;
  std::vector<Element> Elements;
};

/// Pre-stream-API name of the typed builder.
using ParamBuilder = Params;

/// Launch-time options (the machine model lives in the Program).
struct LaunchOptions {
  /// How the launch's warp width is chosen. `Fixed` uses MaxWarpSize as
  /// given. `Auto` hands the decision to the Program's specialization
  /// service: an explore/exploit loop per kernel over the widths {1,2,4,8},
  /// fed by each launch's modeled cycles, that converges on the width with
  /// the lowest cycles per thread (and starts exploited in later processes
  /// when SIMTVEC_CACHE_DIR persists the learned profile). Results are
  /// bit-identical at every width — Auto only moves modeled time.
  enum class WidthPolicy : uint8_t { Fixed, Auto };

  uint32_t MaxWarpSize = 4;
  WidthPolicy Policy = WidthPolicy::Fixed;
  WarpFormation Formation = WarpFormation::Dynamic;
  bool ThreadInvariantElim = false;
  bool UniformBranchOpt = false;
  bool UniformLoadOpt = false;
  /// Decode-time superinstruction fusion in the prepared executable.
  bool Superinstructions = true;
  unsigned Workers = 0;
  bool UseOsThreads = true;
  /// Dispatch worker bodies on the persistent process-wide WorkerPool
  /// instead of spawning OS threads per launch. Off reproduces the paper's
  /// per-launch spawn (and is what `--launches` benches against). Only
  /// meaningful when UseOsThreads is true; modeled counters are identical
  /// either way.
  bool UsePersistentPool = true;
  /// Run on the reference IR-walking engine (differential testing).
  bool UseReferenceInterp = false;
  /// Lane-kernel engine path: Auto consults SIMTVEC_SIMD (default: the
  /// native Simd<T,W> vector kernels when the compiler supports them);
  /// Vector/Scalar force one path. Scalar keeps the pre-SIMD loops as the
  /// differential oracle; results and modeled counters are bit-identical
  /// across paths — only host wall time moves.
  SimdMode Simd = SimdMode::Auto;
  /// Execution-tier knob: Auto interprets on first use and hot-swaps to
  /// the background native tier when its compile lands; Native forces a
  /// synchronous native compile before the first warp entry; Interp pins
  /// the interpreter (the differential oracle). Auto defers to the
  /// SIMTVEC_JIT env var. Outputs and modeled counters are bit-identical
  /// across tiers; only host wall time moves.
  JitMode Jit = JitMode::Auto;
  /// Divergent-branch policy: Auto defers to the SIMTVEC_BRANCH env var
  /// (unset keeps the legacy yield-on-diverge pipeline; "auto" enables the
  /// divergence PGO). Meld/Predicate/Yield force one policy for every
  /// divergence site; Pgo explores under the yield plan and commits a
  /// per-site plan from the observed divergence profile. Outputs are
  /// bit-identical across policies — only yields and wall time move.
  BranchMode Branch = BranchMode::Auto;
  /// Record trace events for this launch (starts a trace session lazily if
  /// none is active; see simtvec/support/Trace.h). Purely host-side:
  /// modeled counters and LaunchStats are unchanged.
  bool Trace = false;
};

/// A compiled SVIR module plus its translation cache.
class Program {
public:
  /// Parses and verifies \p SvirText; specializations are produced lazily
  /// at launch time by the translation cache. The program's specialization
  /// service is configured from the environment (persistent artifact cache
  /// and autotune profiles under SIMTVEC_CACHE_DIR when set).
  static Expected<std::unique_ptr<Program>>
  compile(const std::string &SvirText, const MachineModel &Machine = {});

  /// As above, with an explicit specialization-service configuration
  /// (tests point \p Spec.CacheDir at a scratch directory).
  static Expected<std::unique_ptr<Program>>
  compile(const std::string &SvirText, const MachineModel &Machine,
          SpecializationOptions Spec);

  /// Launches a kernel; blocks until all CTAs complete. A thin wrapper
  /// over launchAsync + synchronize with bit-identical LaunchStats.
  Expected<LaunchStats> launch(Device &Dev, const std::string &KernelName,
                               Dim3 Grid, Dim3 Block, const Params &P,
                               const LaunchOptions &Options = {});

  /// Enqueues a launch on \p S and returns immediately. The launch runs in
  /// stream order on the worker pool; its result arrives through the
  /// returned future, and a launch error additionally becomes the stream's
  /// deferred error. Parameter-signature validation happens here, at
  /// submission (an invalid launch never enqueues).
  LaunchFuture launchAsync(Stream &S, Device &Dev,
                           const std::string &KernelName, Dim3 Grid,
                           Dim3 Block, const Params &P,
                           const LaunchOptions &Options = {});

  /// Launches blocking with tracing forced on, then writes the session's
  /// Chrome trace-event JSON to \p TracePath and ends the session. Stats
  /// are bit-identical to an untraced launch. Intended for one-off capture
  /// (`chrome://tracing`, Perfetto, or `tools/trace_dump`); a failure to
  /// write the trace is reported as the launch error.
  Expected<LaunchStats> launchTraced(const std::string &TracePath,
                                     Device &Dev,
                                     const std::string &KernelName, Dim3 Grid,
                                     Dim3 Block, const Params &P,
                                     LaunchOptions Options = {});

  TranslationCache &translationCache() { return *TC; }
  SpecializationService &specialization() { return *Svc; }
  const Module &module() const { return *M; }
  const MachineModel &machine() const { return Machine; }

private:
  Program() = default;

  /// Graph instantiation resolves nodes through the same private
  /// validation/config paths a stream submission uses.
  friend class Graph;

  /// Validates \p P against the kernel's .param signature (arity, types,
  /// offsets). Unknown kernels pass — the launch itself reports those.
  Status validateParams(const std::string &KernelName, const Params &P) const;

  LaunchConfig makeConfig(const LaunchOptions &Options) const;

  MachineModel Machine;
  std::unique_ptr<Module> M;
  // TC holds a raw pointer into Svc; keep Svc declared first so the cache
  // is destroyed before the service it references.
  std::unique_ptr<SpecializationService> Svc;
  std::unique_ptr<TranslationCache> TC;
};

} // namespace simtvec

#endif // SIMTVEC_RUNTIME_RUNTIME_H
