//===- simtvec/runtime/Runtime.h - Host-side API ----------------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-facing API, playing the role of the CUDA Runtime front-end in
/// the paper (§3): register a module, allocate device memory, copy data,
/// launch kernels, read back statistics.
///
/// \code
///   Device Dev;
///   auto Prog = Program::compile(SvirText);
///   uint64_t A = Dev.alloc(N * 4);
///   Dev.copyToDevice(A, Host.data(), N * 4);
///   ParamBuilder Params;
///   Params.addU64(A).addU32(N);
///   auto Stats = Prog->launch(Dev, "vecadd", {Blocks}, {256}, Params);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_RUNTIME_RUNTIME_H
#define SIMTVEC_RUNTIME_RUNTIME_H

#include "simtvec/core/ExecutionManager.h"
#include "simtvec/ir/Module.h"

#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace simtvec {

/// A device: a flat, bounds-checked global-memory arena. "Device pointers"
/// are byte offsets into the arena and are passed to kernels as .u64
/// parameters.
class Device {
public:
  /// Creates a device with \p GlobalBytes of global memory.
  explicit Device(size_t GlobalBytes = 64ull << 20);

  /// Allocates \p Bytes (16-byte aligned); returns the device address.
  /// Address 0 is never returned (it backs null-pointer checks).
  uint64_t alloc(size_t Bytes);

  void copyToDevice(uint64_t Dst, const void *Src, size_t Bytes);
  void copyFromDevice(void *Dst, uint64_t Src, size_t Bytes) const;
  void memset(uint64_t Dst, int Value, size_t Bytes);

  /// Typed helpers.
  template <typename T> uint64_t allocArray(size_t Count) {
    return alloc(Count * sizeof(T));
  }
  template <typename T>
  void upload(uint64_t Dst, const std::vector<T> &Host) {
    copyToDevice(Dst, Host.data(), Host.size() * sizeof(T));
  }
  template <typename T>
  std::vector<T> download(uint64_t Src, size_t Count) const {
    std::vector<T> Host(Count);
    copyFromDevice(Host.data(), Src, Count * sizeof(T));
    return Host;
  }

  std::byte *data() { return Arena.data(); }
  size_t size() const { return Arena.size(); }
  AtomicStripes &atomics() { return Atomics; }

private:
  std::vector<std::byte> Arena;
  size_t Break = 16; // address 0..15 reserved
  AtomicStripes Atomics;
};

/// Serializes kernel parameters with the same natural-alignment layout the
/// kernel's .param declarations use.
class ParamBuilder {
public:
  ParamBuilder &addU32(uint32_t V) { return add(&V, sizeof(V)); }
  ParamBuilder &addS32(int32_t V) { return add(&V, sizeof(V)); }
  ParamBuilder &addU64(uint64_t V) { return add(&V, sizeof(V)); }
  ParamBuilder &addF32(float V) { return add(&V, sizeof(V)); }
  ParamBuilder &addF64(double V) { return add(&V, sizeof(V)); }

  const std::vector<std::byte> &bytes() const { return Buffer; }

private:
  ParamBuilder &add(const void *Src, size_t Bytes) {
    size_t Offset = (Buffer.size() + Bytes - 1) / Bytes * Bytes;
    Buffer.resize(Offset + Bytes);
    std::memcpy(Buffer.data() + Offset, Src, Bytes);
    return *this;
  }
  std::vector<std::byte> Buffer;
};

/// Launch-time options (the machine model lives in the Program).
struct LaunchOptions {
  uint32_t MaxWarpSize = 4;
  WarpFormation Formation = WarpFormation::Dynamic;
  bool ThreadInvariantElim = false;
  bool UniformBranchOpt = false;
  bool UniformLoadOpt = false;
  /// Decode-time superinstruction fusion in the prepared executable.
  bool Superinstructions = true;
  unsigned Workers = 0;
  bool UseOsThreads = true;
  /// Run on the reference IR-walking engine (differential testing).
  bool UseReferenceInterp = false;
};

/// A compiled SVIR module plus its translation cache.
class Program {
public:
  /// Parses and verifies \p SvirText; specializations are produced lazily
  /// at launch time by the translation cache.
  static Expected<std::unique_ptr<Program>>
  compile(const std::string &SvirText, const MachineModel &Machine = {});

  /// Launches a kernel; blocks until all CTAs complete.
  Expected<LaunchStats> launch(Device &Dev, const std::string &KernelName,
                               Dim3 Grid, Dim3 Block,
                               const ParamBuilder &Params,
                               const LaunchOptions &Options = {});

  TranslationCache &translationCache() { return *TC; }
  const Module &module() const { return *M; }
  const MachineModel &machine() const { return Machine; }

private:
  Program() = default;

  MachineModel Machine;
  std::unique_ptr<Module> M;
  std::unique_ptr<TranslationCache> TC;
};

} // namespace simtvec

#endif // SIMTVEC_RUNTIME_RUNTIME_H
