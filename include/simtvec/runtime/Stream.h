//===- simtvec/runtime/Stream.h - Asynchronous streams & events -*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CUDA-style asynchronous execution: a `Stream` is an in-order queue of
/// host operations (kernel launches, device copies, event records, event
/// waits) drained by the process-wide `WorkerPool`. Operations on one
/// stream execute strictly in submission order; operations on different
/// streams (or from different host threads) run concurrently, sharing the
/// pool and the program's sharded translation cache.
///
/// Ordering / completion rules:
///  - `Stream::synchronize()` blocks until every previously submitted op
///    has completed, and returns (then clears) the stream's first deferred
///    error. The synchronizing thread *helps*: if the stream's drain is
///    pending, it claims it and runs the ops inline rather than waiting
///    for a pool thread — this is what makes the blocking `launch` wrapper
///    as cheap as a direct call.
///  - `Event::record(stream)` marks a point in a stream;
///    `Stream::waitEvent(event)` makes a stream wait for that point;
///    `Event::wait()` blocks the host. A stream waiting on an event does
///    not occupy a pool thread — its drain task exits and is resubmitted
///    when the event fires. An `Event` that was never recorded counts as
///    complete.
///  - Errors from async ops are *deferred*: the first one is captured and
///    reported by `synchronize()`; later ops still run (every op is
///    independent against the flat device arena). Launch errors are also
///    delivered through that launch's `LaunchFuture`.
///
/// A `LaunchFuture` is the handle `Program::launchAsync` returns: `wait()`
/// blocks until that launch completed, `get()` returns its
/// `Expected<LaunchStats>`.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_RUNTIME_STREAM_H
#define SIMTVEC_RUNTIME_STREAM_H

#include "simtvec/core/ExecutionManager.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

namespace simtvec {

class Stream;
class Event;
class Graph;
class GraphExec;

namespace detail {

struct EventState;
struct GraphState;

/// What a stream op reports back to the drain loop.
enum class OpOutcome : uint8_t {
  Done,    ///< completed; pop and continue with the next op
  Blocked, ///< waiting on an event; the drain loop exits, resume() re-arms
  Retry    ///< raced with an event firing; re-run the same op
};

/// Shared state of one stream. Held by shared_ptr: pool drain tasks may
/// outlive the owning Stream object (they no-op once the queue is empty).
struct StreamState : std::enable_shared_from_this<StreamState> {
  /// Who may drain the queue right now. Exactly one thread holds the
  /// Running token at a time; Scheduled is a claimable token produced by
  /// op submission and event resume, consumed by either a pool task or a
  /// helping synchronizer.
  enum class Drain : uint8_t { Idle, Scheduled, Running, Blocked };

  std::mutex M;
  std::condition_variable CV; ///< signalled on Idle and Blocked→Scheduled
  std::deque<std::function<OpOutcome()>> Ops;
  Drain State = Drain::Idle;
  /// Set by EventState::fire when it finds the stream Running (the waiting
  /// op lost the registration race); tells the op to re-check the event.
  bool ResumeSignal = false;
  Status Deferred = Status::success(); ///< first async error, sticky

  /// Capture mode (runtime/Graph.h): while set, submissions append graph
  /// nodes instead of enqueueing ops. CaptureTail is the id of the last
  /// node this stream captured (SIZE_MAX before the first); PendingWaits
  /// holds node ids the next captured node must additionally depend on
  /// (from waitEvent on events recorded in the same capture).
  std::shared_ptr<GraphState> Capture;
  size_t CaptureTail = static_cast<size_t>(-1);
  std::vector<size_t> PendingWaits;

  /// Appends an op; schedules a pool drain task if the stream was idle.
  void enqueue(std::function<OpOutcome()> Op);
  /// Runs ops until the queue empties or an op blocks. Caller must hold
  /// the Running token.
  void drainLoop();
  /// Pool-task entry: claims the Scheduled token if still present.
  void tryClaimAndDrain();
  /// Event-fire callback: re-arms a Blocked stream (or signals a Running
  /// op that lost the race).
  void resume();
  /// Records the first deferred error.
  void noteError(const Status &E);
};

/// Shared state of one event. Fired starts true: an unrecorded event is
/// complete (matching CUDA's semantics for unused events).
struct EventState {
  std::mutex M;
  std::condition_variable CV; ///< host-side Event::wait
  bool Fired = true;
  Status Err = Status::success(); ///< deferred stream error at fire time
  /// Streams to re-arm when the event fires; each callback runs once.
  std::vector<std::function<void()>> Continuations;

  /// When the event was last recorded on a capturing stream: the capture
  /// it belongs to and the node id it marks (SIZE_MAX = start of stream).
  /// waitEvent on a stream capturing the *same* graph turns into an edge.
  std::weak_ptr<GraphState> CaptureGraph;
  size_t CaptureNode = static_cast<size_t>(-1);

  void fire(Status StreamErr);
};

/// Shared state of one asynchronous launch.
struct LaunchState {
  std::mutex M;
  std::condition_variable CV;
  std::optional<Expected<LaunchStats>> Result;

  void fulfill(Expected<LaunchStats> R);
};

} // namespace detail

/// Handle to one asynchronous kernel launch.
class LaunchFuture {
public:
  LaunchFuture() = default;

  /// True once the launch has completed (successfully or not).
  bool ready() const;
  /// Blocks until the launch completed; returns its status.
  Status wait() const;
  /// Blocks until the launch completed; returns the stats or the error.
  Expected<LaunchStats> get() const;

private:
  friend class Program;
  friend class GraphExec;
  explicit LaunchFuture(std::shared_ptr<detail::LaunchState> S)
      : S(std::move(S)) {}

  std::shared_ptr<detail::LaunchState> S;
};

/// An in-order queue of asynchronous host operations.
class Stream {
public:
  Stream();
  /// Blocks until the stream is idle (pending ops complete or are released
  /// by their events), then destroys it. Destroying a stream that waits on
  /// an event nobody will record blocks forever — synchronize first.
  ~Stream();

  Stream(const Stream &) = delete;
  Stream &operator=(const Stream &) = delete;

  /// Blocks until all previously submitted ops completed. Returns the
  /// first deferred error since the last synchronize (and clears it).
  Status synchronize();

  /// Makes subsequent ops on this stream wait until \p E fires. Does not
  /// block the host, and a waiting stream does not occupy a pool thread.
  void waitEvent(Event &E);

  /// True when no submitted op is pending (does not clear deferred errors).
  bool idle() const;

  /// Enqueues a host callback: \p Fn runs (on whichever thread drains the
  /// stream) once every previously submitted op completed, receiving a
  /// snapshot of the stream's deferred error at that point — the snapshot
  /// is not cleared; `synchronize()` still owns it. The callback must not
  /// submit work to or synchronize this same stream (it runs inside the
  /// drain loop). This is the serving scheduler's completion hook: it is
  /// how per-session in-flight launch counts are retired in stream order.
  /// Callbacks are not capturable: on a capturing stream the capture is
  /// invalidated (sticky graph error) and \p Fn runs immediately with that
  /// error.
  void addCallback(std::function<void(const Status &)> Fn);

  /// Starts capturing into \p G: until endCapture, launches and async
  /// copies submitted to this stream are recorded as graph nodes (in
  /// stream order) instead of executing, and event record/wait become
  /// graph edges. Several streams may capture into one graph (fork/join
  /// via events). Fails if this stream is already capturing.
  Status beginCapture(Graph &G);

  /// Ends this stream's capture. Returns the capture's sticky error, if
  /// any (e.g. a cross-graph event wait) — the graph stays invalidated
  /// either way. Fails if the stream was not capturing.
  Status endCapture();

  /// True while this stream is capturing into a graph.
  bool capturing() const;

private:
  friend class Device;
  friend class Event;
  friend class Program;
  friend class GraphExec;

  std::shared_ptr<detail::StreamState> S;
};

/// A recordable completion marker.
class Event {
public:
  Event();

  /// Enqueues a marker on \p S: the event fires when every op submitted to
  /// \p S before this call has completed. Re-recording re-arms the event.
  void record(Stream &S);

  /// True once the last recorded marker fired (never-recorded events count
  /// as fired).
  bool query() const;

  /// Blocks the host until the event fires; returns the stream's deferred
  /// error as of the firing point (without clearing it on the stream).
  Status wait() const;

private:
  friend class Stream;

  std::shared_ptr<detail::EventState> E;
};

} // namespace simtvec

#endif // SIMTVEC_RUNTIME_STREAM_H
