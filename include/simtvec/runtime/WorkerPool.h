//===- simtvec/runtime/WorkerPool.h - Persistent host worker pool -*- C++ -*-//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide pool of long-lived host worker threads. Kernel launches
/// used to spawn and join a fresh set of OS threads inside every
/// `Program::launch`; at small kernel sizes or high launch rates that spawn
/// cost dominates the launch itself. The pool keeps workers parked on a
/// condition variable and hands them two kinds of work:
///
///  - **parallel jobs** (`parallelFor`): run `Fn(0..N-1)` to completion.
///    The calling thread participates (it claims indices like any worker),
///    so a job always makes progress even when every pool thread is busy —
///    which is what makes nested use (a stream drainer running on a pool
///    thread submits a launch's worker bodies back into the same pool)
///    deadlock-free by construction.
///  - **detached tasks** (`submit`): run-once closures, used by `Stream` to
///    drain its in-order op queue.
///
/// Worker threads are also where the execution managers keep their
/// per-worker arenas (`thread_local` in ExecutionManager.cpp): because the
/// threads persist across launches, the arenas — CTA-sized context, ready
/// pool and scratch buffers — are reused instead of reallocated per launch.
///
/// The pool honours the `SIMTVEC_POOL_THREADS` environment variable for its
/// process-wide instance size; otherwise it uses the host's hardware
/// concurrency (minimum 2, so one blocked drainer can never starve the
/// process). Accepted values are whole decimal integers in [1, 1024]; a
/// malformed value (trailing garbage like "8abc", empty, out of range)
/// is rejected with a one-time stderr warning and the default is used.
///
/// Observability: park/wake transitions emit `pool.park`/`pool.wake` trace
/// events and maintain the `pool.occupancy` metrics gauge; `parallelFor`
/// and detached tasks are spans (`pool.parallel_for`, `pool.task`). See
/// simtvec/support/Trace.h.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_RUNTIME_WORKERPOOL_H
#define SIMTVEC_RUNTIME_WORKERPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simtvec {

/// A fixed-size pool of persistent worker threads.
class WorkerPool {
public:
  /// Creates a pool with \p ThreadCount workers (0 = hardware concurrency,
  /// minimum 2).
  explicit WorkerPool(unsigned ThreadCount = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// The process-wide pool used by `Program::launch*` and `Stream`.
  /// Created lazily on first use; sized by `SIMTVEC_POOL_THREADS` when set.
  static WorkerPool &global();

  unsigned threadCount() const { return NumThreads; }

  /// Runs `Fn(0), ..., Fn(N-1)`, in parallel across pool workers and the
  /// calling thread, returning once every call has completed. Safe to call
  /// from inside a pool task (the caller claims indices itself, so progress
  /// never depends on a free pool thread).
  void parallelFor(unsigned N, const std::function<void(unsigned)> &Fn);

  /// Enqueues a detached task; runs on some pool worker, after every
  /// parallel job currently requesting help.
  void submit(std::function<void()> Task);

  /// Blocks until the pool is quiescent: no listed parallel job, no queued
  /// task, and every worker parked. This is the daemon-shutdown barrier —
  /// the process-wide pool is intentionally leaked at exit, so a service
  /// that is about to return from `main` must drain first or in-flight
  /// `parallelFor` bodies and stream drain tasks would be torn down
  /// mid-launch by process teardown. Must be called from a thread that is
  /// *not* a pool worker (a worker can never observe itself parked), and
  /// new work submitted after drain() returns is not covered.
  void drain();

  /// Lifetime counters (tests / diagnostics).
  struct Stats {
    uint64_t ParallelJobs = 0;
    uint64_t TasksRun = 0;
    uint64_t Parks = 0;     ///< times a worker parked on the work CV
    unsigned Occupancy = 0; ///< workers currently unparked
  };
  Stats stats() const;

private:
  struct Job;

  void workerMain();
  /// Picks a listed job with unclaimed indices; pool mutex held.
  Job *pickJobLocked();
  /// Removes \p J from the active list once fully claimed; pool mutex held.
  void unlistIfExhausted(Job *J);
  /// Publishes park/occupancy metrics; pool mutex held.
  void noteOccupancy();

  /// True iff no job is listed, no task is queued, and every worker is
  /// parked; pool mutex held.
  bool idleLocked() const;

  mutable std::mutex M;
  std::condition_variable WorkCV;
  std::condition_variable IdleCV; ///< signalled when the pool goes idle
  std::vector<Job *> Jobs; ///< active parallel jobs (stack-owned by callers)
  std::deque<std::function<void()>> Tasks;
  bool ShuttingDown = false;
  uint64_t JobCount = 0;
  uint64_t TaskCount = 0;
  uint64_t ParkCount = 0;
  unsigned Parked = 0; ///< workers currently waiting on WorkCV
  /// Fixed at construction *before* any worker spawns: early workers park
  /// (and report occupancy) while the constructor is still appending to
  /// Threads, so they must not read Threads.size().
  unsigned NumThreads = 0;
  std::vector<std::thread> Threads;
};

} // namespace simtvec

#endif // SIMTVEC_RUNTIME_WORKERPOOL_H
