//===- simtvec/runtime/Graph.h - Kernel launch graphs -----------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CUDA-graph-style capture/instantiate/replay: a `Graph` records a DAG of
/// kernel launches, async device copies, and dependencies; instantiation
/// resolves every node once (parameter validation, translation-cache gets,
/// native-tier warmup, width commitment, topological schedule); the
/// resulting immutable `GraphExec` replays the whole DAG as one stream op
/// with per-node overhead reduced to an atomic dependency countdown.
///
/// Two ways to build a graph:
///
/// Explicit builder:
/// \code
///   Graph G;
///   auto A = G.addCopyToDevice(Dev, Buf, Host.data(), Bytes);
///   auto B = G.addLaunch(Dev, "scale", {8}, {128}, P);
///   G.addDependency(A, B);
///   auto Exec = G.instantiate(*Prog);
/// \endcode
///
/// Stream capture (the `launchAsync`/`copy*Async` calls record instead of
/// executing; cross-stream event record/wait becomes a graph edge):
/// \code
///   Graph G;
///   S.beginCapture(G);
///   Dev.copyToDeviceAsync(S, Buf, Host.data(), Bytes);
///   Prog->launchAsync(S, Dev, "scale", {8}, {128}, P);
///   S.endCapture();
///   auto Exec = G.instantiate(*Prog);
/// \endcode
///
/// Replay semantics match the equivalent eager stream-op sequence exactly:
/// `LaunchStats` and the `em.*` metrics are bit-identical, errors are
/// deferred to `Stream::synchronize` (and the per-launch futures), and
/// later nodes still run after an earlier node failed. What replay does
/// *not* repeat is the per-launch resolution work — no parameter
/// re-validation, no translation-cache misses, no width decisions.
///
/// Lifetimes: a GraphExec holds raw pointers to the Program and the Devices
/// named by its nodes, and to the host buffers of its copy nodes; all must
/// outlive every replay. A GraphExec is immutable and safe to replay from
/// several streams concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_RUNTIME_GRAPH_H
#define SIMTVEC_RUNTIME_GRAPH_H

#include "simtvec/runtime/Runtime.h"

#include <memory>
#include <vector>

namespace simtvec {

class Graph;
class GraphExec;

namespace detail {

/// One recorded graph node, as captured or built (unresolved).
struct GraphNode {
  enum class Kind : uint8_t { Launch, CopyToDevice, CopyFromDevice };
  Kind K = Kind::Launch;
  Device *Dev = nullptr;

  // Launch nodes.
  std::string KernelName;
  Dim3 Grid{1, 1, 1}, Block{1, 1, 1};
  Params P;
  LaunchOptions Options;

  // Copy nodes.
  uint64_t DevAddr = 0;
  const void *HostSrc = nullptr; ///< CopyToDevice source
  void *HostDst = nullptr;       ///< CopyFromDevice destination
  size_t Bytes = 0;

  /// Node ids this node waits on (stream order and explicit edges alike).
  std::vector<size_t> Deps;
};

/// Shared mutable state of a Graph under construction. Held by shared_ptr:
/// capturing streams and recorded events reference it while the Graph
/// object lives elsewhere.
struct GraphState {
  std::mutex M;
  std::vector<GraphNode> Nodes;
  /// First capture/builder error; sticky — instantiation refuses an
  /// invalidated graph.
  Status Err = Status::success();
  unsigned ActiveCaptures = 0;
};

/// If \p SS is capturing, appends \p N to the captured graph (with the
/// stream-order and pending event-wait dependencies) and returns true; the
/// caller must then skip the eager op. Returns false when not capturing.
bool captureAppend(StreamState &SS, GraphNode N);

/// If \p SS is capturing, marks \p ES as recorded at the capture's current
/// tail node and returns true (nothing is enqueued).
bool captureMarkEvent(StreamState &SS, EventState &ES);

/// If \p SS is capturing, turns a wait on \p ES into a graph edge (or a
/// sticky capture error when the event was not recorded in the same
/// capture) and returns true (nothing is enqueued).
bool captureWaitEvent(StreamState &SS, EventState &ES);

struct GraphExecImpl;

} // namespace detail

/// Instantiation knobs.
struct GraphInstantiateOptions {
  /// Compile the native tier synchronously for every node during
  /// instantiation, so even the first replay runs the JIT tier warm. By
  /// default warmup is requested asynchronously (forced `Jit = Native`
  /// nodes always compile synchronously, as in eager launches).
  bool SyncNative = false;
};

/// An immutable, fully resolved graph: replayable, copyable (shared
/// ownership of the schedule), and safe to replay concurrently.
class GraphExec {
public:
  GraphExec() = default;

  /// Enqueues one replay of the whole DAG on \p S as a single stream op.
  /// Returns one future per launch node, in node order (copy nodes have no
  /// future; their errors defer to `S.synchronize()`). Node errors do not
  /// stop the replay — independent later nodes still run, exactly as the
  /// eager stream sequence would behave.
  std::vector<LaunchFuture> launch(Stream &S) const;

  /// Number of nodes in the instantiated schedule.
  size_t size() const;

private:
  friend class Graph;
  explicit GraphExec(std::shared_ptr<const detail::GraphExecImpl> I)
      : I(std::move(I)) {}

  std::shared_ptr<const detail::GraphExecImpl> I;
};

/// A DAG of kernel launches and async copies under construction.
class Graph {
public:
  using NodeId = size_t;

  Graph();

  /// Builder API: appends an unordered node (dependencies are explicit via
  /// addDependency). The Params are copied; the Device pointer and, for
  /// copies, the host buffer must outlive every replay.
  NodeId addLaunch(Device &Dev, std::string KernelName, Dim3 Grid, Dim3 Block,
                   Params P, LaunchOptions Options = {});
  NodeId addCopyToDevice(Device &Dev, uint64_t Dst, const void *Src,
                         size_t Bytes);
  NodeId addCopyFromDevice(Device &Dev, void *Dst, uint64_t Src, size_t Bytes);

  /// Makes \p After wait for \p Before. Rejects unknown ids and self-edges;
  /// cycles are detected at instantiation.
  Status addDependency(NodeId Before, NodeId After);

  /// Recorded nodes so far (builder plus capture).
  size_t size() const;

  /// Resolves every node against \p Prog: validates parameters and
  /// geometry, commits `WidthPolicy::Auto` widths, performs the
  /// translation-cache gets, requests native-tier compiles, and computes
  /// the topological schedule. Fails on capture-invalidated graphs, graphs
  /// with an active capture, cycles, and anything an eager submission of
  /// the same ops would have rejected.
  Expected<GraphExec> instantiate(Program &Prog,
                                  const GraphInstantiateOptions &O = {}) const;

private:
  friend class Stream;

  std::shared_ptr<detail::GraphState> G;
};

} // namespace simtvec

#endif // SIMTVEC_RUNTIME_GRAPH_H
