//===- simtvec/serve/Server.h - Multi-tenant serving daemon -----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving daemon core: a `ServeDaemon` listens on a Unix-domain
/// socket and turns each connection into a per-tenant *session* — its own
/// bounds-checked `Device` arena and its own in-order `Stream`, mapped
/// onto the process-shared machinery: one WorkerPool runs every session's
/// launches, and sessions that load identical SVIR source share one
/// `Program` (hence one TranslationCache, one SpecializationService, one
/// warm artifact/JIT store). That sharing is the whole point: the second
/// tenant to ask for a kernel gets the first tenant's compile, and a warm
/// store means *no* tenant compiles at all.
///
/// Isolation is per-session by construction: a tenant's traps, bad
/// parameters, and out-of-bounds copies land in its own stream's deferred
/// error (reported by its own Synchronize) and its own arena; no shared
/// mutable state carries one tenant's failure into another's results.
///
/// Fairness: every session op (copies and launches alike, to preserve the
/// session's submission order) flows through one `FairScheduler`, which
/// drains session queues round-robin and admits a launch only while the
/// session has fewer than `MaxInFlight` launches unretired — a tenant
/// spraying launches fills its own window and its own backlog (backpressure
/// blocks its connection thread at `MaxQueued`), while other tenants keep
/// getting one op per round. Launch retirement rides the stream layer:
/// `Stream::addCallback` enqueued directly behind each launch decrements
/// the window in stream order.
///
/// Shutdown (`requestStop`, wired to SIGTERM in tools/svcd) is a drain,
/// not an abort: stop accepting, wake the session threads, let each flush
/// its queue and synchronize its stream, then quiesce the WorkerPool
/// (`WorkerPool::drain`) so process exit never tears down an in-flight
/// `parallelFor` under a launch.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SERVE_SERVER_H
#define SIMTVEC_SERVE_SERVER_H

#include "simtvec/runtime/Runtime.h"
#include "simtvec/serve/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace simtvec {
namespace serve {

/// Daemon configuration.
struct ServeOptions {
  /// Unix-domain socket path to bind (required; unlinked on shutdown).
  std::string SocketPath;
  /// Per-session launches admitted into the stream before admission control
  /// holds the next one back.
  unsigned MaxInFlight = 8;
  /// Per-session scheduler backlog; enqueue (hence the tenant's connection)
  /// blocks at this depth.
  unsigned MaxQueued = 64;
  /// Per-session device arena size.
  size_t DeviceBytes = 64ull << 20;
  /// Machine model every session's programs compile against.
  MachineModel Machine{};
  /// Shared artifact-store configuration. Defaults to the environment
  /// (SIMTVEC_CACHE_DIR persistence, SIMTVEC_CACHE_MAX_BYTES governor cap).
  SpecializationOptions Spec = SpecializationOptions::fromEnv();
};

/// Round-robin fair scheduler over per-session FIFO op queues (see the
/// file comment). Separately constructible so tests can drive the policy
/// without sockets.
class FairScheduler {
public:
  FairScheduler(unsigned MaxInFlight, unsigned MaxQueued);
  ~FairScheduler();

  FairScheduler(const FairScheduler &) = delete;
  FairScheduler &operator=(const FairScheduler &) = delete;

  /// Registers a session queue under \p Id (caller-chosen, unique).
  void addSession(uint64_t Id);
  /// Flushes then removes the session queue. In-flight launches may still
  /// retire afterwards; late onLaunchRetired calls are ignored.
  void removeSession(uint64_t Id);

  /// Appends an op to the session's queue. \p Submit runs on the dispatcher
  /// thread and must only *enqueue* stream work (never wait for it).
  /// Launch ops (\p IsLaunch) are admission-controlled. Blocks while the
  /// session's backlog is at MaxQueued. Returns false (op dropped, Submit
  /// never runs) when the session is unknown or the scheduler is stopping —
  /// callers waiting on a completion the op would deliver must check.
  bool enqueue(uint64_t Id, bool IsLaunch, std::function<void()> Submit);

  /// Retires one launch of session \p Id (called from the stream-ordered
  /// completion callback); may admit that session's next queued launch.
  void onLaunchRetired(uint64_t Id);

  /// Blocks until every op the session enqueued has been *submitted* to its
  /// stream (not completed — pair with Stream::synchronize for that).
  void flush(uint64_t Id);

  /// Stops the dispatcher. Queued-but-unsubmitted ops are dropped; callers
  /// drain sessions first for a graceful stop.
  void stop();

  struct Stats {
    uint64_t Dispatched = 0; ///< ops handed to Submit
    uint64_t Deferred = 0;   ///< head-of-queue launches held back by the window
  };
  Stats stats() const;

private:
  struct SessionQ {
    std::deque<std::pair<bool, std::function<void()>>> Items;
    unsigned InFlight = 0;   ///< launches submitted but not retired
    bool Submitting = false; ///< dispatcher is inside this queue's Submit
    std::condition_variable CV; ///< backpressure + flush waiters
  };

  void dispatchLoop();

  const unsigned MaxInFlight;
  const unsigned MaxQueued;

  mutable std::mutex M;
  std::condition_variable WorkCV;
  std::map<uint64_t, std::unique_ptr<SessionQ>> Sessions;
  std::vector<uint64_t> Order; ///< round-robin rotation, insertion order
  size_t Cursor = 0;
  bool Stopping = false;
  uint64_t Dispatched = 0;
  uint64_t DeferredCount = 0;
  std::thread Dispatcher;
};

/// The daemon (see the file comment). tools/svcd wraps this in a process;
/// tests and the soak bench embed it in-process.
class ServeDaemon {
public:
  explicit ServeDaemon(ServeOptions Opts);
  /// Stops (drains) the daemon if still running.
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon &) = delete;
  ServeDaemon &operator=(const ServeDaemon &) = delete;

  /// Binds the socket and starts the accept loop. Error if the path is
  /// unbindable (too long, directory missing, address in use by a live
  /// daemon); a stale socket file from a dead daemon is replaced.
  Status start();

  /// Graceful drain: stop accepting, wake every session thread, let each
  /// flush its scheduler queue and synchronize its stream, stop the
  /// scheduler, then quiesce the process WorkerPool. Idempotent; returns
  /// once the daemon is fully stopped.
  void requestStop();

  const ServeOptions &options() const { return Opts; }

  /// Daemon-lifetime counters (diagnostics, svcd --metrics).
  struct Counters {
    uint64_t SessionsAccepted = 0;
    uint64_t SessionsActive = 0;
    uint64_t FramesServed = 0;   ///< request frames handled
    uint64_t ProtocolErrors = 0; ///< malformed frames (connection dropped)
    uint64_t Launches = 0;       ///< launch verbs accepted across sessions
  };
  Counters counters() const;

private:
  struct Session;

  void acceptLoop();
  void serveSession(std::shared_ptr<Session> S);
  /// Handles one request frame; false when the session should close.
  bool handleFrame(Session &S, const Frame &F);

  ServeOptions Opts;
  FairScheduler Sched;

  mutable std::mutex M;
  int ListenFd = -1;
  bool Running = false;
  bool Stopping = false;
  uint64_t NextSessionId = 1;
  std::thread Acceptor;
  std::vector<std::thread> SessionThreads;
  std::vector<std::shared_ptr<Session>> ActiveSessions;

  /// Programs dedup'd by SVIR source hash — the cross-tenant sharing point.
  std::mutex ProgM;
  std::map<uint64_t, std::shared_ptr<Program>> ProgramsBySource;

  std::atomic<uint64_t> SessionsAccepted{0};
  std::atomic<uint64_t> FramesServed{0};
  std::atomic<uint64_t> ProtocolErrors{0};
  std::atomic<uint64_t> LaunchCount{0};
};

} // namespace serve
} // namespace simtvec

#endif // SIMTVEC_SERVE_SERVER_H
