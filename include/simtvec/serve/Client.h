//===- simtvec/serve/Client.h - Serving daemon client -----------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `ServeClient` — the tenant-side library for the serving daemon. One
/// instance is one session: connect() performs the Hello handshake, and
/// each method is one protocol round-trip (serve/Protocol.h documents the
/// frames). The API deliberately mirrors the in-process runtime —
/// loadProgram/alloc/copyIn/launch/copyOut/synchronize — so a workload
/// ports to the daemon by swapping the object it talks to.
///
/// Semantics carried over from the Stream model: launch() is
/// fire-and-forget (a LaunchOk only acknowledges queueing; launch errors
/// are deferred and reported by the session's next synchronize()), while
/// copyOut() is stream-ordered and blocks until every previously submitted
/// op completed. A client is NOT thread-safe — one session, one user
/// thread, matching the one-stream-per-session model on the server.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SERVE_CLIENT_H
#define SIMTVEC_SERVE_CLIENT_H

#include "simtvec/serve/Protocol.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace simtvec {
namespace serve {

class ServeClient {
public:
  ServeClient() = default;
  /// Closes the connection (best-effort Bye) if still open.
  ~ServeClient();

  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to the daemon at \p SocketPath and performs the Hello
  /// handshake. \p ClientName is a diagnostic label the daemon keeps.
  Status connect(const std::string &SocketPath,
                 const std::string &ClientName = "client");

  bool connected() const { return Fd >= 0; }
  /// Daemon-assigned session id (valid after connect()).
  uint64_t sessionId() const { return SessionId; }
  /// Per-session device arena size the daemon granted.
  uint64_t deviceBytes() const { return DevBytes; }
  /// The daemon's per-session launch admission window.
  unsigned maxInFlight() const { return MaxInFlight; }

  /// Compiles (or dedups against another tenant's compile of) \p Svir and
  /// returns the program handle for launch().
  Expected<uint64_t> loadProgram(const std::string &Svir);

  /// Allocates \p Bytes in the session's device arena.
  Expected<uint64_t> alloc(uint64_t Bytes);

  /// Stream-ordered host-to-device copy; chunks transparently when \p N
  /// exceeds one frame. Returns once the daemon queued every chunk (not
  /// once the copy ran — that is synchronize()/copyOut() ordering).
  Status copyIn(uint64_t Dst, const void *Src, size_t N);

  /// Stream-ordered device-to-host read-back: blocks until every
  /// previously submitted op of this session completed, then fills \p Dst.
  Status copyOut(void *Dst, uint64_t Src, size_t N);

  /// Queues a launch; returns the session-local submission sequence
  /// number. Launch errors are deferred to synchronize(), exactly like
  /// Program::launchAsync on a Stream.
  Expected<uint64_t> launch(uint64_t ProgramId, const std::string &Kernel,
                            Dim3 Grid, Dim3 Block, const Params &P,
                            const LaunchOptions &O = LaunchOptions());

  /// Drains the session's stream on the daemon and returns its deferred
  /// error (success when clean) — the serving twin of Stream::synchronize.
  Status synchronize();

  /// launches_completed reported by the most recent synchronize().
  uint64_t launchesCompleted() const { return LaunchesDone; }

  /// Fetches the daemon's stats rows: per-session counters plus a global
  /// MetricsRegistry snapshot (names like "tc.compile", "cache.prune_runs").
  Expected<std::vector<std::pair<std::string, uint64_t>>> stats();

  /// One stats row by name; NotFound error when the daemon did not report
  /// it. Convenience for tests asserting e.g. a warm daemon's "tc.compile".
  Expected<uint64_t> statValue(const std::string &Name);

  /// Polite shutdown: Bye handshake, then closes the socket. Idempotent.
  void close();

private:
  /// Sends one request frame and reads the reply; maps an Error frame to a
  /// Status and enforces \p Expect on the reply type. Any transport or
  /// framing failure closes the connection.
  Expected<Frame> roundTrip(MsgType Type, const ByteWriter &W,
                            MsgType Expect);

  int Fd = -1;
  uint64_t SessionId = 0;
  uint64_t DevBytes = 0;
  unsigned MaxInFlight = 0;
  uint64_t LaunchesDone = 0;
};

} // namespace serve
} // namespace simtvec

#endif // SIMTVEC_SERVE_CLIENT_H
