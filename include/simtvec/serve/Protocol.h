//===- simtvec/serve/Protocol.h - Serving wire protocol ---------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed wire protocol between `ServeClient` and the serving daemon
/// (`tools/svcd`), spoken over a Unix-domain stream socket.
///
/// Every message is one frame:
///
///     +--------+--------+--------+----------------------+
///     | magic  | type   | length | payload (length B)   |
///     | u32 LE | u32 LE | u32 LE |                      |
///     +--------+--------+--------+----------------------+
///
/// Payloads are encoded with the same little-endian ByteWriter/ByteReader
/// the artifact cache uses (support/Serialize.h), so truncated or
/// bit-flipped payloads latch the reader's failure flag instead of reading
/// out of bounds. The magic word rejects non-protocol peers at the first
/// frame; a length above `MaxFrameBytes` rejects the frame without
/// allocating — both produce a descriptive `Error` frame and a closed
/// connection, never a crash (the protocol-fuzz tests hold this to it).
///
/// Session verbs (client -> server, each answered by exactly one reply):
///
///   Hello        u32 version, str client_name
///                -> HelloOk: u32 version, u64 session_id, u32 max_inflight,
///                            u64 device_bytes
///   LoadProgram  str svir_text
///                -> ProgramOk: u64 program_id   (dedup'd by source hash:
///                   sessions loading identical source share one Program,
///                   hence one TranslationCache and one warm artifact store)
///   Alloc        u64 bytes              -> AllocOk: u64 device_addr
///   CopyIn       u64 dst, u32 n, raw    -> Ok      (stream-ordered)
///   CopyOut      u64 src, u64 n         -> Data: raw bytes (runs after all
///                                          previously submitted ops)
///   Launch       u64 program_id, str kernel, u32 grid[3], u32 block[3],
///                u8 width_auto, u32 max_warp, params
///                -> LaunchOk: u64 seq   (fire-and-forget: launch errors are
///                   deferred to Synchronize, exactly like Stream semantics)
///   Synchronize  (empty)  -> SyncOk: str deferred_error ("" = clean),
///                            u64 launches_completed
///   Stats        (empty)  -> StatsOk: u32 n, n x (str name, u64 value) —
///                            per-session counters plus a global
///                            MetricsRegistry snapshot
///   Bye          (empty)  -> Ok, then the server closes the session
///
/// Any client error the server can attribute (unknown program id, device
/// OOM, out-of-bounds copy, compile failure) is an `Error` frame with a
/// descriptive message; the session survives. Malformed *framing* (bad
/// magic, oversized length, truncated payload) is an `Error` frame followed
/// by connection close — a peer that cannot frame cannot be resynced.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_SERVE_PROTOCOL_H
#define SIMTVEC_SERVE_PROTOCOL_H

#include "simtvec/runtime/Runtime.h"
#include "simtvec/support/Serialize.h"
#include "simtvec/support/Status.h"

#include <cstdint>
#include <vector>

namespace simtvec {
namespace serve {

/// First word of every frame ("SVSP" little-endian).
constexpr uint32_t ProtocolMagic = 0x50535653u;

/// Protocol revision; Hello/HelloOk negotiate equality (no back-compat
/// shimming at this size — a mismatch is a descriptive rejection).
constexpr uint32_t ProtocolVersion = 1;

/// Hard cap on one frame's payload. Large device buffers move as multiple
/// CopyIn/CopyOut frames below this size.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Bytes of the fixed frame header (magic + type + length).
constexpr size_t FrameHeaderBytes = 12;

enum class MsgType : uint32_t {
  // Client -> server.
  Hello = 1,
  LoadProgram = 2,
  Alloc = 3,
  CopyIn = 4,
  CopyOut = 5,
  Launch = 6,
  Synchronize = 7,
  Stats = 8,
  Bye = 9,
  // Server -> client.
  HelloOk = 100,
  ProgramOk = 101,
  AllocOk = 102,
  Ok = 103,
  Data = 104,
  LaunchOk = 105,
  SyncOk = 106,
  StatsOk = 107,
  Error = 199,
};

/// One decoded frame.
struct Frame {
  MsgType Type = MsgType::Error;
  std::vector<uint8_t> Payload;
};

/// Serializes the fixed header into \p Out.
void encodeFrameHeader(uint8_t Out[FrameHeaderBytes], MsgType Type,
                       uint32_t Len);

/// Decodes the fixed header; false on a magic mismatch (\p Type and \p Len
/// are still filled for diagnostics).
bool decodeFrameHeader(const uint8_t In[FrameHeaderBytes], uint32_t &Type,
                       uint32_t &Len);

/// Writes one full frame to the socket \p Fd (loops over partial writes,
/// suppresses SIGPIPE). An error means the connection is unusable.
Status sendFrame(int Fd, MsgType Type, const void *Payload, size_t Len);
inline Status sendFrame(int Fd, MsgType Type, const ByteWriter &W) {
  return sendFrame(Fd, Type, W.bytes().data(), W.size());
}
inline Status sendFrame(int Fd, MsgType Type) {
  return sendFrame(Fd, Type, nullptr, 0);
}

/// Reads one full frame from \p Fd. Errors on garbage magic, an oversized
/// length, a short read, or a closed peer; when \p AtEof is non-null it is
/// set iff the peer closed cleanly *between* frames (the one non-error way
/// a session ends without Bye).
Expected<Frame> recvFrame(int Fd, bool *AtEof = nullptr);

/// Convenience: an Error frame carrying \p Message.
Status sendError(int Fd, const std::string &Message);

/// Wire encoding of a launch's Params: u32 count, then per element a u8
/// type code and the value as u64 bits (f32 in the low 32). Returns false
/// on a Params element the wire cannot carry (vector-typed elements).
bool encodeParams(ByteWriter &W, const Params &P);

/// Decodes what encodeParams wrote, rebuilding the typed builder (offsets
/// are recomputed by the same natural-alignment appends the client used,
/// so the server-side layout is bit-identical). False on any structural
/// problem; \p R's failure flag also covers truncation.
bool decodeParams(ByteReader &R, Params &P);

} // namespace serve
} // namespace simtvec

#endif // SIMTVEC_SERVE_PROTOCOL_H
