//===- simtvec/core/ExecutionManager.h - Dynamic execution manager -*- C++ -*-//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic execution manager and kernel launch orchestration (paper §3
/// and §5.2). A launch spawns worker threads; the grid of CTAs is
/// statically partitioned across them. Each worker's execution manager owns
/// the thread contexts of its current CTA, forms warps from ready threads
/// waiting at the same entry point (round-robin pick, then the largest warp
/// the translation cache has a specialization for), runs them on the VM,
/// and processes yields: divergent branches return threads to the ready
/// pool, barriers move them to a wait queue released when the whole CTA has
/// arrived, and terminated contexts are discarded.
///
/// Warp formation policies (paper §6.2):
///  - Dynamic: any ready threads of the CTA with the same entry ID.
///  - Static: only threads of the same aligned group of MaxWarpSize
///    consecutive linear thread IDs (the precondition for thread-invariant
///    elimination).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_CORE_EXECUTIONMANAGER_H
#define SIMTVEC_CORE_EXECUTIONMANAGER_H

#include "simtvec/core/TranslationCache.h"
#include "simtvec/support/Jit.h"
#include "simtvec/vm/Counters.h"
#include "simtvec/vm/ThreadContext.h"

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace simtvec {

/// How warps are formed from ready threads.
enum class WarpFormation : uint8_t { Dynamic, Static };

/// Host-side parallel-for hook: runs `Fn(0..N-1)` to completion, typically
/// on a persistent worker pool. Installed by the runtime layer (core cannot
/// depend on runtime); when unset, launches fall back to per-launch thread
/// spawn (`UseOsThreads`) or sequential execution.
using HostParallelFor =
    std::function<void(unsigned N, const std::function<void(unsigned)> &Fn)>;

/// Launch-wide configuration.
struct LaunchConfig {
  MachineModel Machine;

  /// Largest warp specialization used (the paper evaluates 4 = SSE lanes).
  uint32_t MaxWarpSize = 4;

  WarpFormation Formation = WarpFormation::Dynamic;

  /// Thread-invariant expression elimination; requires Static formation.
  bool ThreadInvariantElim = false;

  /// Lower provably-uniform branches directly (ablation).
  bool UniformBranchOpt = false;

  /// Collapse provably warp-uniform computations (constant-memory loads)
  /// to one scalar copy (ablation of the paper's future-work uniform/affine
  /// analysis).
  bool UniformLoadOpt = false;

  /// Decode-time superinstruction fusion (setp+selp, iota+binary,
  /// spill/restore runs) in the prepared executable.
  bool Superinstructions = true;

  /// Worker threads; 0 uses Machine.Cores.
  unsigned Workers = 0;

  /// Run workers on OS threads (true, as in the paper) or sequentially in
  /// the caller (false; deterministic debugging).
  bool UseOsThreads = true;

  /// When set, worker bodies run through this hook instead of spawning
  /// threads — the runtime installs the persistent WorkerPool here. The
  /// modeled counters are independent of which dispatch path runs the
  /// workers (worker IDs and the CTA partition are identical).
  HostParallelFor ParallelFor;

  /// Execute warps on the reference (direct IR-walking) engine instead of
  /// the pre-decoded fast path. Differential testing only: both engines
  /// must produce bit-identical outputs and modeled counters.
  bool UseReferenceInterp = false;

  /// Lane-kernel engine path: Auto consults SIMTVEC_SIMD (then defaults to
  /// the native vector backend when compiled in); Vector/Scalar force one
  /// path. Scalar keeps the pre-SIMD loops as the differential oracle.
  /// Results and modeled counters are bit-identical across paths.
  SimdMode Simd = SimdMode::Auto;

  /// Execution-tier knob: Auto interprets on first use and hot-swaps to the
  /// background-compiled native tier when it lands; Native compiles
  /// synchronously before the first warp entry; Interp pins the
  /// interpreter (the differential oracle for the native tier). Auto
  /// defers to SIMTVEC_JIT. Outputs and modeled counters are bit-identical
  /// across tiers.
  JitMode Jit = JitMode::Auto;

  /// Resolved per-site branch policy plan (ControlFlowMeld chars; "" is
  /// the legacy all-yield pipeline). The runtime resolves LaunchOptions'
  /// BranchMode — possibly via the PGO profile — into this string before
  /// the launch runs; it keys every translation-cache query.
  std::string BranchPlan;
};

/// Aggregated results of one kernel launch.
struct LaunchStats {
  CycleCounters Counters; ///< summed over all workers

  /// Modeled wall time: slowest worker's cycles over the modeled clock.
  double MaxWorkerCycles = 0;
  double ModeledSeconds = 0;

  /// Kernel-entry histogram by warp size (paper Fig. 7).
  std::map<uint32_t, uint64_t> EntriesByWidth;
  uint64_t WarpEntries = 0;   ///< total warp-level kernel entries
  uint64_t ThreadEntries = 0; ///< sum of warp sizes over entries

  uint64_t BranchYields = 0;
  uint64_t BarrierYields = 0;
  uint64_t ExitYields = 0;

  /// Divergence yields attributed to their pre-meld branch site (index =
  /// ControlFlowMeld site id). Sums to BranchYields when every yield is
  /// attributable; feeds the divergence-PGO profile.
  std::vector<uint64_t> SiteBranchYields;

  /// Average threads per kernel entry (paper Fig. 7).
  double avgWarpSize() const {
    return WarpEntries ? static_cast<double>(ThreadEntries) /
                             static_cast<double>(WarpEntries)
                       : 0;
  }
  /// Average values restored per thread per entry (paper Fig. 8).
  double restoredPerThreadEntry() const {
    return ThreadEntries ? static_cast<double>(Counters.RestoredValues) /
                               static_cast<double>(ThreadEntries)
                         : 0;
  }
  /// Cycle fractions (paper Fig. 9).
  double emFraction() const {
    double T = Counters.totalCycles();
    return T > 0 ? Counters.EMCycles / T : 0;
  }
  double yieldFraction() const {
    double T = Counters.totalCycles();
    return T > 0 ? Counters.YieldCycles / T : 0;
  }
  double subkernelFraction() const {
    double T = Counters.totalCycles();
    return T > 0 ? Counters.SubkernelCycles / T : 0;
  }
  /// Modeled floating-point throughput (paper Table 1).
  double gflops() const {
    return ModeledSeconds > 0
               ? static_cast<double>(Counters.Flops) / ModeledSeconds / 1e9
               : 0;
  }
};

/// Validates the geometry/configuration invariants every launch must
/// satisfy — shared by eager launches (`launchKernel`) and graph
/// instantiation, so both reject the same shapes with the same messages.
Status validateLaunchGeometry(const LaunchConfig &Config, Dim3 Grid,
                              Dim3 Block);

/// Launches \p KernelName over \p Grid x \p Block with the serialized
/// parameter buffer \p ParamBuf against the global-memory arena
/// [\p Global, \p Global + \p GlobalSize). Returns the launch statistics or
/// the first error (unknown kernel, VM trap, barrier deadlock, invalid
/// configuration).
Expected<LaunchStats>
launchKernel(TranslationCache &TC, const std::string &KernelName, Dim3 Grid,
             Dim3 Block, const std::vector<std::byte> &ParamBuf,
             std::byte *Global, size_t GlobalSize, AtomicStripes &Atomics,
             const LaunchConfig &Config);

/// A fully resolved launch: geometry validated, kernel layout resolved, and
/// one executable per warp width fetched from the translation cache — all
/// ahead of time. Graph instantiation builds one of these per launch node
/// so that replay performs no validation, no layout lookup, and no
/// translation-cache get.
struct PreparedLaunch {
  std::string KernelName;
  Dim3 Grid, Block;
  std::vector<std::byte> ParamBuf;
  LaunchConfig Config;
  TranslationCache::KernelLayout Layout;
  unsigned Workers = 1;
  /// Executables indexed by log2(width); non-null for every power of two
  /// up to Config.MaxWarpSize.
  std::vector<std::shared_ptr<const KernelExec>> Execs;
};

/// Replays a prepared launch. Semantics, LaunchStats, and em.* metrics are
/// bit-identical to `launchKernel` over the same arguments; the difference
/// is purely where the resolution work happened (once, at preparation).
/// Worker ExecMemos are seeded from \p PL.Execs, so every warp entry is a
/// memo hit reported via `TranslationCache::noteWarmHits`.
Expected<LaunchStats> launchPrepared(TranslationCache &TC,
                                     const PreparedLaunch &PL,
                                     std::byte *Global, size_t GlobalSize,
                                     AtomicStripes &Atomics);

} // namespace simtvec

#endif // SIMTVEC_CORE_EXECUTIONMANAGER_H
