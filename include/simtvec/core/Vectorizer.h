//===- simtvec/core/Vectorizer.h - Kernel vectorization ---------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: the program transformation that maps a
/// kernel of data-parallel scalar threads onto a vector unit.
///
///  - Algorithm 1 (Vectorize): each scalar instruction is replicated for the
///    `ws` threads of a warp; vectorizable bundles are promoted to a single
///    vector-typed instruction. Loads/stores stay scalar per lane, with
///    explicit pack (insertelement) and unpack (extractelement) at the
///    boundaries.
///  - Algorithm 2: conditional branches become a predicate-sum switch:
///    sum==0 jumps to the fall-through, sum==ws to the taken target (both
///    stay inside the vectorized region), anything else enters an exit
///    handler.
///  - Algorithm 3 (CreateScheduler): a trampoline block switches on the
///    warp's entry ID and jumps to entry handlers that restore live-in
///    values from thread-local spill slots.
///  - Algorithm 4 (CreateExits): exit handlers spill live-out values, write
///    per-thread resume points via `selp`, set the resume status and yield
///    to the execution manager.
///
/// Thread-invariant expression elimination (§6.2): under static warp
/// formation, instructions whose values are provably identical across the
/// warp are emitted once as scalars and broadcast on demand.
///
/// Entry IDs and spill-slot offsets come from a SpecializationPlan derived
/// from the *scalar* kernel, so every warp-size specialization of a kernel
/// agrees on both — a thread may yield from the width-4 binary and resume
/// in the width-2 binary.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_CORE_VECTORIZER_H
#define SIMTVEC_CORE_VECTORIZER_H

#include "simtvec/ir/Kernel.h"
#include "simtvec/transforms/Passes.h"

#include <memory>
#include <vector>

namespace simtvec {

/// Vectorization options.
struct VectorizeOptions {
  /// Threads per warp (1 = the scalar baseline specialization).
  uint32_t WarpSize = 1;

  /// Thread-invariant expression elimination. Only valid under static warp
  /// formation with row-aligned warps (the execution manager enforces
  /// both).
  bool ThreadInvariantElim = false;

  /// Lower branches whose condition is provably warp-uniform as direct
  /// branches instead of predicate-sum switches (ablation of the paper's
  /// "divergence analysis" future work).
  bool UniformBranchOpt = false;

  /// Collapse provably warp-uniform computations — notably .param
  /// (constant-memory) loads and the expressions over them — to one scalar
  /// copy even under dynamic warp formation (the paper's §4 "divergence
  /// analysis [11] and affine analysis [12]" future work, restricted to
  /// the uniform case; %tid.y/z stay variant since warps are arbitrary).
  bool UniformLoadOpt = false;
};

/// Warp-size-independent specialization metadata shared by all widths of
/// one kernel: the entry-point table and the spill-slot layout.
struct SpecializationPlan {
  /// entry id -> scalar block index; entry 0 is the kernel entry.
  std::vector<uint32_t> EntryScalarBlocks;
  /// scalar block index -> entry id (or ~0u when the block is no entry).
  std::vector<uint32_t> EntryIdOf;
  /// register index -> spill slot byte offset (every register has one).
  std::vector<uint32_t> SlotOf;
  /// total spill area per thread.
  uint32_t SpillBytes = 0;

  /// Number of divergence sites in the pre-meld kernel (ControlFlowMeld's
  /// numbering; stable across branch plans so PGO profiles line up).
  uint32_t NumSites = 0;
  /// entry id -> pre-meld divergence site whose branch created it (~0u for
  /// the kernel entry and barrier continuations). Attributes a divergence
  /// yield back to its site for the per-branch profile.
  std::vector<uint32_t> SiteOfEntry;
  /// scalar block index -> 1 when its guarded Bra is a masked-loop
  /// backedge: the vectorizer loops while any lane's mask is set instead
  /// of yielding on divergence.
  std::vector<uint8_t> MaskedBlock;

  /// Derives the plan from a prepared scalar kernel (predicate-to-select,
  /// barrier splitting and — when a branch plan is active — control-flow
  /// melding must already have run). \p Meld, when given, carries the
  /// melder's site numbering and masked-backedge set; without it sites are
  /// renumbered from the kernel as-is (correct for the all-yield plan).
  static SpecializationPlan build(const Kernel &ScalarKernel,
                                  const MeldResult *Meld = nullptr);
};

/// Produces the warp-size-\p Opts.WarpSize specialization of
/// \p ScalarKernel. The input must verify, have no vector instructions, and
/// have barriers only in BarrierSplit position.
std::unique_ptr<Kernel> vectorizeKernel(const Kernel &ScalarKernel,
                                        const SpecializationPlan &Plan,
                                        const VectorizeOptions &Opts);

} // namespace simtvec

#endif // SIMTVEC_CORE_VECTORIZER_H
