//===- simtvec/core/SpecializationService.h - Persistent specialization -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specialization service: two cooperating halves layered behind the
/// translation cache that turn per-process, fixed-width specialization into
/// a persistent, self-tuning subsystem.
///
///  - **Persistent artifact cache.** Every specialization the translation
///    cache compiles (the post-vectorization, post-cleanup kernel the VM
///    executable is built from) is serialized to a versioned binary artifact
///    under `SIMTVEC_CACHE_DIR`, keyed by the kernel-source hash, the cache
///    key (width + option flags), and a build fingerprint (service format
///    version + MachineModel + superinstruction flag). A later process —
///    or a later TranslationCache in the same process — resolves its cold
///    misses from disk: deserialize, re-verify, rebuild the pre-decoded
///    stream (decode-time function pointers cannot persist), and cross-check
///    the rebuilt executable's layout fingerprint against the recorded one.
///    A warm process therefore performs zero compiles. Artifacts publish by
///    atomic rename; CRC-validated payloads make truncated or bit-flipped
///    entries (and any version/fingerprint drift) plain cache misses, never
///    errors.
///
///  - **Online warp-width autotuner.** The paper fixes MaxWarpSize per
///    launch, but no single width wins everywhere: streaming kernels want
///    the machine width while divergence-heavy kernels pay for every extra
///    lane in yield save/restore traffic. Under `WidthPolicy::Auto` the
///    service runs an explore/exploit loop per kernel over the candidate
///    widths {1,2,4,8}: each width is sampled `ExploreSamples` times using
///    the modeled cycles-per-thread the launch already produces, then the
///    service commits to the argmin width and answers it from memory — and,
///    when persistence is on, from a profile file stored next to the
///    artifacts, so later processes start exploited.
///
/// Both halves are observable: `tc.disk_hit` / `tc.disk_miss` /
/// `tc.disk_write` and `autotune.explore` / `autotune.commit` metrics
/// counters with matching trace instants. `tools/cache_tool` inspects,
/// verifies and prunes the on-disk store.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_CORE_SPECIALIZATIONSERVICE_H
#define SIMTVEC_CORE_SPECIALIZATIONSERVICE_H

#include "simtvec/core/TranslationCache.h"
#include "simtvec/support/Serialize.h"

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simtvec {

class Kernel;
class Module;

/// Serializes \p K (all IR fields plus specialization metadata) into \p W.
/// The encoding round-trips exactly: deserializeKernel produces a kernel
/// whose executable build is bit-identical to the original's.
void serializeKernel(ByteWriter &W, const Kernel &K);

/// Decodes a kernel from \p R into \p K. Returns false (leaving \p K
/// unspecified) on any structural problem: truncation, out-of-range enum
/// values, or count fields exceeding the remaining payload.
bool deserializeKernel(ByteReader &R, Kernel &K);

/// Service configuration. `fromEnv()` is what the runtime uses: persistence
/// is enabled iff SIMTVEC_CACHE_DIR names a directory.
struct SpecializationOptions {
  /// Artifact/profile directory; empty disables persistence (the autotuner
  /// still runs in-memory).
  std::string CacheDir;

  /// Candidate widths for WidthPolicy::Auto, explored in order. Must be a
  /// subset of the valid launch widths {1,2,4,8}.
  std::vector<uint32_t> Widths = {1, 2, 4, 8};

  /// Modeled-cycle samples collected per candidate width before the
  /// autotuner commits to the argmin.
  unsigned ExploreSamples = 2;

  /// Launches observed under the legacy all-yield plan before the
  /// divergence PGO commits a per-site branch plan ('m' where the site
  /// yielded at least once, 'y' elsewhere).
  unsigned BranchExploreLaunches = 3;

  /// Store size cap in bytes (0 = uncapped). When set and persistence is
  /// on, the CacheGovernor prunes least-recently-used entries after each
  /// artifact/native publish that leaves the store over the cap — the same
  /// LRU policy `cache_tool prune --max-bytes` applies, run in-process on
  /// the async executor. `fromEnv()` reads SIMTVEC_CACHE_MAX_BYTES.
  uint64_t CacheMaxBytes = 0;

  static SpecializationOptions fromEnv();
};

/// The persistent artifact cache + width autotuner (see file comment).
/// Thread-safe; one instance lives per Program, installed into its
/// TranslationCache.
class SpecializationService {
public:
  /// On-disk format version; bumped whenever the artifact encoding, the
  /// kernel serialization, or the decode pipeline changes incompatibly.
  /// v2: branch plan joined the artifact fingerprint; profiles carry the
  /// divergence-PGO section.
  static constexpr uint32_t FormatVersion = 2;

  /// \p M must outlive the service (it supplies kernel sources for
  /// fingerprinting). \p Machine must match the TranslationCache's model.
  SpecializationService(const Module &M, const MachineModel &Machine,
                        SpecializationOptions Opts);

  bool persistent() const { return !Opts.CacheDir.empty(); }
  const SpecializationOptions &options() const { return Opts; }

  //===--------------------------------------------------------------------===
  // Artifact cache half (called by TranslationCache on compile misses).
  //===--------------------------------------------------------------------===

  /// Attempts to resolve \p K from the on-disk store. Returns the rebuilt
  /// executable, or null on any miss (absent, unreadable, corrupt, stale
  /// version/fingerprint, failed re-verification, or layout mismatch —
  /// never an error). Null when persistence is off.
  std::shared_ptr<const KernelExec>
  tryLoadArtifact(const TranslationCache::Key &K);

  /// Publishes the freshly compiled \p Exec for key \p K (atomic rename).
  /// Write failures are swallowed: the store is advisory.
  void storeArtifact(const TranslationCache::Key &K, const KernelExec &Exec);

  /// Path the artifact for \p K lives at (valid only when persistent()).
  std::string artifactPath(const TranslationCache::Key &K);

  //===--------------------------------------------------------------------===
  // Autotuner half (called by the runtime under WidthPolicy::Auto).
  //===--------------------------------------------------------------------===

  /// Width the next Auto launch of \p KernelName should run at: the
  /// committed width when converged (memory or persisted profile),
  /// otherwise the next width needing exploration samples.
  uint32_t chooseWidth(const std::string &KernelName);

  /// Feeds one launch's modeled outcome back: \p ModeledCycles is the
  /// slowest worker's cycles (LaunchStats::MaxWorkerCycles), \p Threads the
  /// launch's logical thread count (normalizing across geometries).
  void recordSample(const std::string &KernelName, uint32_t Width,
                    double ModeledCycles, uint64_t Threads);

  /// The converged width for \p KernelName, or 0 while still exploring.
  uint32_t committedWidth(const std::string &KernelName);

  //===--------------------------------------------------------------------===
  // Divergence PGO (called by the runtime under BranchMode::Pgo).
  //
  // Per (kernel, width) — the profitable policy is width-dependent — the
  // service runs an A/B/N trial on *measured wall time*: candidate plans
  // ("" legacy all-yield, "p" flatten, "m" flatten+meld+masked-loops)
  // round-robin across `3 * BranchExploreLaunches` launches, each scored
  // by its per-candidate minimum seconds (the minimum discards the
  // first-launch artifact compile and one-off machine stalls; a mean
  // would fold them in and bury real wins on short kernels), and the
  // argmin commits — with "" defended by a >2% noise margin, so wall
  // jitter cannot flip a kernel off the legacy artifacts. A kernel whose
  // first "" launch saw no divergence commits "" immediately (divergence
  // is shape-deterministic). Wall time, not modeled cycles, is the
  // fitness: melding trades modeled yield round-trips for real guarded
  // over-execution, and the two disagree on irregular kernels. Committed
  // plans persist in the `.svcp` profile, so a warm process launches
  // under the winner immediately. Width-1 launches never participate (a
  // 1-wide warp cannot diverge).
  //===--------------------------------------------------------------------===

  /// Branch plan the next Pgo launch of \p KernelName at \p Width should
  /// run under: the committed plan when converged (memory or persisted
  /// profile), otherwise the plan the trial currently measures.
  std::string chooseBranchPlan(const std::string &KernelName,
                               uint32_t Width);

  /// Feeds one launch's outcome back: per-site divergence yields plus the
  /// measured wall seconds. Launches whose \p PlanUsed does not match the
  /// trial slot under measurement are ignored (stale in-flight plans).
  void recordBranchSample(const std::string &KernelName, uint32_t Width,
                          const std::string &PlanUsed,
                          const std::vector<uint64_t> &SiteYields,
                          double Seconds);

  /// The committed branch plan, or "" while exploring (indistinguishable
  /// from a committed all-yield plan; see branchPlanCommitted).
  std::string committedBranchPlan(const std::string &KernelName,
                                  uint32_t Width);

  /// Whether the (kernel, width) trial has converged on a plan.
  bool branchPlanCommitted(const std::string &KernelName, uint32_t Width);

  //===--------------------------------------------------------------------===
  // Native JIT tier (second execution tier behind the cache).
  //
  // The service emits specialized C++ for a decoded executable, invokes the
  // system toolchain off the launch's critical path, dlopens the result and
  // publishes the entry point into the (already dispatched) KernelExec —
  // launches interpret on first use and go native when the object is ready.
  // When persistence is on, the `.so` joins the artifact store keyed by the
  // build fingerprint plus the discovered compiler identity, so a warm
  // process dlopens without recompiling and a compiler upgrade recompiles
  // instead of trusting stale code. Every failure (no toolchain, emission
  // refusal, compile error, load/verify mismatch) silently leaves the
  // executable on the interpreter tier.
  //===--------------------------------------------------------------------===

  /// Installs the executor used for background compiles (normally the
  /// process worker pool). Without one, requests run on the calling thread.
  void setAsyncSubmit(std::function<void(std::function<void()>)> Submit);

  /// Requests the native tier for \p Exec (the translation of key \p K).
  /// Claims the executable's single compile slot, so repeated calls are
  /// free. \p Sync runs the job before returning (forced
  /// `SIMTVEC_JIT=native`); otherwise it runs on the async executor.
  void requestNative(const TranslationCache::Key &K,
                     std::shared_ptr<const KernelExec> Exec, bool Sync);

  /// Path the native object for \p K publishes at, or "" when persistence
  /// is off / no toolchain is discoverable.
  std::string nativeObjectPath(const TranslationCache::Key &K);

  static constexpr const char *NativeExt = ".so";

  //===--------------------------------------------------------------------===
  // Store inspection (cache_tool, tests).
  //===--------------------------------------------------------------------===

  /// Parsed header + validation result of one artifact file.
  struct ArtifactInfo {
    uint32_t Version = 0;
    uint64_t Fingerprint = 0;
    uint64_t LayoutFingerprint = 0;
    uint32_t PayloadBytes = 0;
    bool CrcValid = false;
    bool Decodes = false;    ///< payload deserializes into a kernel
    std::string KernelName;  ///< valid when Decodes
    uint32_t WarpSize = 0;   ///< valid when Decodes
  };

  /// Reads and validates \p Path as an artifact file. An unreadable file or
  /// a bad magic/header is an error; CRC/decode problems are reported in
  /// the returned info (cache_tool distinguishes "not an artifact" from
  /// "corrupt artifact").
  static Expected<ArtifactInfo> inspectArtifact(const std::string &Path);

  /// File extensions of store entries.
  static constexpr const char *ArtifactExt = ".svca";
  static constexpr const char *ProfileExt = ".svcp";

  /// Outcome of one LRU size-cap pass over a store directory.
  struct PruneResult {
    unsigned Evicted = 0;      ///< entries removed
    uint64_t BytesFreed = 0;   ///< bytes those entries held
    uint64_t StoreBytes = 0;   ///< store size after the pass
  };

  /// Evicts least-recently-used store entries (`.svca`/`.svcp`/`.so`) from
  /// \p Dir until the store's total size fits in \p MaxBytes. Recency is
  /// file atime when the mount tracks atimes (any entry with atime > mtime)
  /// and mtime otherwise, with a filename tie-break for determinism —
  /// exactly the `cache_tool prune --max-bytes` policy, shared so the
  /// in-process CacheGovernor and the CLI cannot drift. \p OnEvict (may be
  /// null) observes each removal. Timestamps are captured before any entry
  /// is opened, so the scan itself cannot bump the recency it sorts by.
  static PruneResult
  pruneStoreToBytes(const std::string &Dir, uint64_t MaxBytes,
                    const std::function<void(const std::string &Name,
                                             uint64_t Bytes)> &OnEvict = {});

  struct Stats {
    uint64_t DiskHits = 0;
    uint64_t DiskMisses = 0;
    uint64_t DiskWrites = 0;
    uint64_t JitCompiles = 0; ///< toolchain invocations
    uint64_t JitHits = 0;     ///< warm `.so` loads (no compile)
    uint64_t JitSwaps = 0;    ///< native entry points published
  };
  Stats stats() const;

private:
  /// Build fingerprint for \p K: format version x source hash x machine
  /// model x key flags.
  uint64_t fingerprintFor(const TranslationCache::Key &K);
  /// Profile fingerprint for \p KernelName (key flags excluded: the profile
  /// spans widths).
  uint64_t profileFingerprintFor(const std::string &KernelName);
  uint64_t sourceHash(const std::string &KernelName);
  std::string profilePath(const std::string &KernelName);

  struct WidthState {
    uint32_t Width = 0;
    uint32_t Samples = 0;
    double SumCyclesPerThread = 0;
  };
  /// Divergence-PGO trial state for one (kernel, width).
  struct BranchState {
    bool Committed = false;
    std::string Plan;            ///< valid when Committed
    uint32_t Launches = 0;       ///< trial launches recorded so far
    std::vector<double> CandMinSecs;    ///< per-candidate best wall seconds
    std::vector<uint32_t> CandLaunches; ///< per-candidate launches recorded
    uint64_t ExploreYields = 0;  ///< total divergence yields under ""
    std::vector<uint64_t> SiteYields; ///< per-site yields (observability)
  };
  struct KernelTune {
    std::vector<WidthState> Per; ///< one slot per candidate width, in order
    uint32_t Committed = 0;      ///< 0 while exploring
    bool ProfileChecked = false; ///< persisted profile load attempted
    std::map<uint32_t, BranchState> Branch; ///< divergence PGO, per width
  };
  /// CacheGovernor: schedules one size-cap pass on the async executor when
  /// the store may have outgrown Opts.CacheMaxBytes (no-op when uncapped,
  /// not persistent, or a pass is already in flight).
  void governStore();

  KernelTune &tuneFor(const std::string &KernelName); ///< TuneLock held
  void persistProfile(const std::string &KernelName, const KernelTune &T);
  /// Seals one (kernel, width) trial on its best plan. TuneLock held.
  void commitBranchPlan(const std::string &KernelName, KernelTune &T,
                        BranchState &B);

  const Module &M;
  MachineModel Machine;
  SpecializationOptions Opts;

  std::mutex HashLock;
  std::map<std::string, uint64_t> SourceHashes;

  std::mutex TuneLock;
  std::map<std::string, KernelTune> Tune;

  std::atomic<uint64_t> DiskHits{0}, DiskMisses{0}, DiskWrites{0};

  /// JIT-half stats live behind a shared_ptr: compile jobs may outlive the
  /// service (they run detached on the async executor holding only
  /// by-value state), so they update this block, never `this`.
  struct JitSharedStats {
    std::atomic<uint64_t> Compiles{0}, Hits{0}, Swaps{0};
  };
  std::shared_ptr<JitSharedStats> JitStats =
      std::make_shared<JitSharedStats>();

  std::mutex JitLock; ///< guards AsyncSubmit
  std::function<void(std::function<void()>)> AsyncSubmit;

  /// Single-flight latch for the CacheGovernor: at most one prune pass per
  /// service at a time. Behind a shared_ptr for the same reason JitStats
  /// is — governor tasks run detached and may outlive the service.
  std::shared_ptr<std::atomic<bool>> GovernorBusy =
      std::make_shared<std::atomic<bool>>(false);

  MetricsRegistry::Counter *RegDiskHits =
      &MetricsRegistry::global().counter("tc.disk_hit");
  MetricsRegistry::Counter *RegDiskMisses =
      &MetricsRegistry::global().counter("tc.disk_miss");
  MetricsRegistry::Counter *RegDiskWrites =
      &MetricsRegistry::global().counter("tc.disk_write");
  MetricsRegistry::Counter *RegExplore =
      &MetricsRegistry::global().counter("autotune.explore");
  MetricsRegistry::Counter *RegCommit =
      &MetricsRegistry::global().counter("autotune.commit");
  MetricsRegistry::Counter *RegBranchExplore =
      &MetricsRegistry::global().counter("autotune.branch_explore");
  MetricsRegistry::Counter *RegBranchCommit =
      &MetricsRegistry::global().counter("autotune.branch_commit");
};

} // namespace simtvec

#endif // SIMTVEC_CORE_SPECIALIZATIONSERVICE_H
