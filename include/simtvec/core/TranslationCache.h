//===- simtvec/core/TranslationCache.h - Dynamic translation cache -*- C++ -*-//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic translation cache (paper §5.1): kernels registered with the
/// runtime are lazily specialized per (warp size, formation policy) on the
/// first query from an execution manager, passed through the classical
/// optimization pipeline, verified, and prepared for the VM. Queries are
/// serialized by a lock, as in the paper ("execution managers block while
/// contending for a lock on the dynamic translation cache").
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_CORE_TRANSLATIONCACHE_H
#define SIMTVEC_CORE_TRANSLATIONCACHE_H

#include "simtvec/core/Vectorizer.h"
#include "simtvec/support/Status.h"
#include "simtvec/vm/Executable.h"

#include <map>
#include <mutex>
#include <string>

namespace simtvec {

class Module;

/// Lazily specializes kernels per warp size and policy.
class TranslationCache {
public:
  /// \p M must outlive the cache. \p RunCleanup applies the classical
  /// optimization pipeline (constant folding, CSE, DCE) after
  /// vectorization, as the paper's cache does with LLVM passes.
  TranslationCache(const Module &M, const MachineModel &Machine,
                   bool RunCleanup = true)
      : M(M), Machine(Machine), RunCleanup(RunCleanup) {}

  /// Key of one specialization.
  struct Key {
    std::string KernelName;
    uint32_t WarpSize = 1;
    bool ThreadInvariantElim = false;
    bool UniformBranchOpt = false;
    bool UniformLoadOpt = false;

    bool operator<(const Key &R) const {
      return std::tie(KernelName, WarpSize, ThreadInvariantElim,
                      UniformBranchOpt, UniformLoadOpt) <
             std::tie(R.KernelName, R.WarpSize, R.ThreadInvariantElim,
                      R.UniformBranchOpt, R.UniformLoadOpt);
    }
  };

  /// Returns the specialization for \p K, compiling it on the first query.
  Expected<std::shared_ptr<const KernelExec>> get(const Key &K);

  /// Memory footprint the execution manager must provision per kernel.
  struct KernelLayout {
    uint32_t LocalBytes = 0;  ///< per thread: user .local plus spill area
    uint32_t SharedBytes = 0; ///< per CTA
    uint32_t ParamBytes = 0;
  };

  /// Layout of \p KernelName (prepares the scalar form if necessary).
  Expected<KernelLayout> layoutFor(const std::string &KernelName);

  /// Cache behaviour counters.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    double CompileSeconds = 0; ///< host wall time spent specializing
  };
  Stats stats() const;

private:
  /// Prepared scalar form shared by all specializations of a kernel.
  struct PreparedKernel {
    Kernel Scalar; ///< after PredicateToSelect + BarrierSplit
    SpecializationPlan Plan;
  };

  Expected<const PreparedKernel *> prepare(const std::string &KernelName);

  const Module &M;
  MachineModel Machine;
  bool RunCleanup;

  mutable std::mutex Lock;
  std::map<std::string, PreparedKernel> Prepared;
  std::map<Key, std::shared_ptr<const KernelExec>> Cache;
  Stats Counters;
};

} // namespace simtvec

#endif // SIMTVEC_CORE_TRANSLATIONCACHE_H
