//===- simtvec/core/TranslationCache.h - Dynamic translation cache -*- C++ -*-//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic translation cache (paper §5.1): kernels registered with the
/// runtime are lazily specialized per (warp size, formation policy) on the
/// first query from an execution manager, passed through the classical
/// optimization pipeline, verified, and prepared for the VM.
///
/// The paper observes that "execution managers block while contending for a
/// lock on the dynamic translation cache". This implementation removes that
/// contention: lookups take a sharded reader lock (warm queries from any
/// number of execution managers proceed concurrently and block only against
/// an insert into the same shard), and compilation happens outside every
/// cache lock under a per-key in-flight guard — exactly one thread compiles
/// a given specialization while concurrent requesters for the *same* key
/// wait on its slot and requesters for *different* keys (e.g. other warp
/// widths) compile in parallel.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_CORE_TRANSLATIONCACHE_H
#define SIMTVEC_CORE_TRANSLATIONCACHE_H

#include "simtvec/core/Vectorizer.h"
#include "simtvec/support/Status.h"
#include "simtvec/support/Trace.h"
#include "simtvec/vm/Executable.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace simtvec {

class Module;
class SpecializationService;

/// Lazily specializes kernels per warp size and policy.
class TranslationCache {
public:
  /// \p M must outlive the cache. \p RunCleanup applies the classical
  /// optimization pipeline (constant folding, CSE, DCE) after
  /// vectorization, as the paper's cache does with LLVM passes.
  TranslationCache(const Module &M, const MachineModel &Machine,
                   bool RunCleanup = true)
      : M(M), Machine(Machine), RunCleanup(RunCleanup) {}

  /// Key of one specialization.
  struct Key {
    std::string KernelName;
    uint32_t WarpSize = 1;
    bool ThreadInvariantElim = false;
    bool UniformBranchOpt = false;
    bool UniformLoadOpt = false;
    bool Superinstructions = true; ///< decode-time superinstruction fusion
    /// Lane-kernel engine path (already resolved from the mode knob; the
    /// cache never consults the environment itself). Distinct paths are
    /// distinct specializations so forced-scalar oracle runs can coexist
    /// with vector runs in one process.
    SimdPath Simd = resolveSimdPath(SimdMode::Auto);
    /// Resolved per-site branch policy chars (ControlFlowMeld plan
    /// string); "" is the legacy all-yield pipeline. Distinct plans are
    /// distinct specializations — melded and yielding code for one kernel
    /// coexist in cache, on disk and in the native tier.
    std::string BranchPlan;

    bool operator<(const Key &R) const {
      return std::tie(KernelName, WarpSize, ThreadInvariantElim,
                      UniformBranchOpt, UniformLoadOpt, Superinstructions,
                      Simd, BranchPlan) <
             std::tie(R.KernelName, R.WarpSize, R.ThreadInvariantElim,
                      R.UniformBranchOpt, R.UniformLoadOpt,
                      R.Superinstructions, R.Simd, R.BranchPlan);
    }
  };

  /// Returns the specialization for \p K, compiling it on the first query.
  /// Thread-safe; warm queries take only a shared (reader) lock.
  Expected<std::shared_ptr<const KernelExec>> get(const Key &K);

  /// Returns the already-compiled specialization for \p K, or null —
  /// never compiles, never counts a hit or miss. The native tier uses
  /// this as its hotness probe at launch start: an entry that already
  /// exists was created by an earlier launch, so the probe fires on the
  /// second launch of a specialization and never perturbs the first.
  std::shared_ptr<const KernelExec> peek(const Key &K);

  /// Memory footprint the execution manager must provision per kernel.
  struct KernelLayout {
    uint32_t LocalBytes = 0;  ///< per thread: user .local plus spill area
    uint32_t SharedBytes = 0; ///< per CTA
    uint32_t ParamBytes = 0;
  };

  /// Layout of \p KernelName under branch plan \p BranchPlan (prepares the
  /// scalar form if necessary). The layout is plan-dependent: melding
  /// changes the register set and therefore the spill area.
  Expected<KernelLayout> layoutFor(const std::string &KernelName,
                                   const std::string &BranchPlan = "");

  /// The specialization plan of \p KernelName under \p BranchPlan
  /// (prepares the scalar form if necessary). Pointer stays valid for the
  /// cache's lifetime; the execution manager uses it to attribute
  /// divergence yields to their pre-meld sites.
  Expected<const SpecializationPlan *>
  planFor(const std::string &KernelName, const std::string &BranchPlan = "");

  /// Cache behaviour counters.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    double CompileSeconds = 0; ///< host wall time spent specializing
  };
  Stats stats() const;

  /// Accounts \p N warm lookups served from an execution manager's local
  /// memo of a previously returned executable (the memo is a cache-hit fast
  /// path layered above this cache; its hits are still cache hits).
  void noteWarmHits(uint64_t N) {
    Hits.fetch_add(N, std::memory_order_relaxed);
    RegHits->fetch_add(N, std::memory_order_relaxed);
  }

  /// Installs the specialization service consulted on compile misses: the
  /// compile owner first tries the service's on-disk artifact store, and
  /// publishes freshly compiled executables back to it. \p S must outlive
  /// the cache (the owning Program holds both). Null detaches.
  void setSpecializationService(SpecializationService *S) { Svc = S; }
  SpecializationService *specializationService() const { return Svc; }

private:
  /// Prepared scalar form shared by all warp-size specializations of a
  /// (kernel, branch plan) pair.
  struct PreparedKernel {
    Kernel Scalar; ///< after PredicateToSelect + BarrierSplit + Meld
    SpecializationPlan Plan;
  };

  /// One in-progress compilation; requesters of the same key block on CV.
  struct CompileSlot {
    std::mutex Lock;
    std::condition_variable Ready;
    bool Done = false;
    Status Err = Status::success();
    std::shared_ptr<const KernelExec> Value;
  };

  static constexpr size_t NumShards = 8;
  struct Shard {
    mutable std::shared_mutex Lock;
    std::map<Key, std::shared_ptr<const KernelExec>> Cache;
  };

  Shard &shardFor(const Key &K);
  Expected<const PreparedKernel *> prepare(const std::string &KernelName,
                                           const std::string &BranchPlan);

  const Module &M;
  MachineModel Machine;
  bool RunCleanup;
  SpecializationService *Svc = nullptr;

  Shard Shards[NumShards];

  std::mutex PrepareLock; ///< guards Prepared
  std::map<std::pair<std::string, std::string>, PreparedKernel> Prepared;

  std::mutex InFlightLock; ///< guards InFlight
  std::map<Key, std::shared_ptr<CompileSlot>> InFlight;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  mutable std::mutex StatsLock; ///< guards CompileSeconds
  double CompileSeconds = 0;

  /// Process-wide metrics mirrors of Hits/Misses: every bump goes to both,
  /// so `MetricsRegistry` totals reconcile with stats() (summed over all
  /// caches in the process).
  MetricsRegistry::Counter *RegHits =
      &MetricsRegistry::global().counter("tc.hits");
  MetricsRegistry::Counter *RegMisses =
      &MetricsRegistry::global().counter("tc.misses");
  /// Actual specializations performed (vectorize + cleanup + build). A miss
  /// resolved from the artifact store bumps Misses but not this counter —
  /// "warm process performs zero compiles" is asserted against it.
  MetricsRegistry::Counter *RegCompiles =
      &MetricsRegistry::global().counter("tc.compile");
};

} // namespace simtvec

#endif // SIMTVEC_CORE_TRANSLATIONCACHE_H
