//===- simtvec/parser/Parser.h - SVIR textual parser ------------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the SVIR textual dialect produced by the printer (and written by
/// hand for the workload suite). Diagnostics carry line:column positions.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_PARSER_PARSER_H
#define SIMTVEC_PARSER_PARSER_H

#include "simtvec/ir/Module.h"
#include "simtvec/support/Status.h"

#include <memory>
#include <string>

namespace simtvec {

/// Parses \p Text into a module. On failure the status message contains a
/// "line:col: ..." diagnostic.
Expected<std::unique_ptr<Module>> parseModule(const std::string &Text);

/// Convenience wrapper for inputs containing exactly one kernel; parses and
/// verifies, asserting success (for tests and workload tables whose sources
/// are compiled in).
std::unique_ptr<Module> parseModuleOrDie(const std::string &Text);

} // namespace simtvec

#endif // SIMTVEC_PARSER_PARSER_H
