//===- simtvec/transforms/Passes.h - Classical IR passes --------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical-optimization substrate the translation cache applies around
/// vectorization (paper §5.1: predicate-to-select conversion and barrier
/// block splitting before translation; "traditional compiler optimizations
/// such as basic block fusion and common subexpression elimination" after).
/// Every pass returns true when it changed the kernel.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_TRANSFORMS_PASSES_H
#define SIMTVEC_TRANSFORMS_PASSES_H

#include "simtvec/ir/Kernel.h"

#include <string>
#include <vector>

namespace simtvec {

/// Replaces guarded pure instructions with an unguarded compute into a
/// fresh register followed by `selp` (paper §5.1). Guarded memory
/// operations keep their guards (a select cannot express a suppressed side
/// effect).
bool runPredicateToSelect(Kernel &K);

/// What runControlFlowMeld did at each divergence site, for the
/// specialization plan and the per-site divergence profile. Sites are the
/// guarded `bra` terminators of the *input* kernel, numbered in block
/// order before any transformation; the block mappings below are in terms
/// of the *output* kernel (melding removes and fuses blocks).
struct MeldResult {
  /// Number of divergence sites in the input kernel.
  uint32_t NumSites = 0;

  /// One policy char per site after legality clamping: 'y' yield (site
  /// still diverges), 'p' flattened predicated diamond/triangle, 'm'
  /// melded (flattened with DARM-style alignment, or masked self-loop).
  std::string EffectivePlan;

  /// Output block index -> site id of its surviving guarded-Bra
  /// terminator, ~0u when the block has none. This is what attributes a
  /// divergence yield back to its site for the PGO profile.
  std::vector<uint32_t> SiteOfBlockTerm;

  /// Output block indices whose guarded Bra is a masked loop backedge:
  /// the vectorizer keeps the warp looping while *any* lane's mask is
  /// live instead of yielding on disagreement.
  std::vector<uint32_t> MaskedBlocks;
};

/// Divergence reduction (DARM-style control-flow melding). \p Plan gives a
/// requested policy char per site ('y' / 'p' / 'm'); the empty string means
/// all-yield (the pass only numbers sites and changes nothing), a single
/// char applies to every site, and missing/invalid chars clamp to 'y'.
/// Sites whose shape or contents cannot legally meld clamp to 'y'
/// deterministically — the requested plan is a cache key, the effective
/// plan is what actually happened.
///
/// 'p' flattens acyclic diamonds and triangles: both halves execute in the
/// branch block predicated on a snapshot of the branch condition. 'm'
/// additionally aligns structurally identical instructions of the two
/// halves into one unguarded instruction over `selp`-selected operands
/// (profitable for expensive ops: memory, div/rem, transcendentals), fuses
/// the resulting straight-line chains, and converts divergent self-loops
/// into masked loops (every iteration runs under a lane mask that starts
/// true and is ANDed with the backedge condition).
MeldResult runControlFlowMeld(Kernel &K, const std::string &Plan);

/// Splits basic blocks so every `bar.sync` ends its block, followed by an
/// unconditional branch to the continuation (the yield lowering turns these
/// sites into exits, paper §3: "kernel partitioning at barriers").
bool runBarrierSplit(Kernel &K);

/// Removes pure instructions whose results are dead (liveness-based).
bool runDeadCodeElim(Kernel &K);

/// Folds instructions with all-immediate operands into `mov` of an
/// immediate, using the VM's bit-exact scalar semantics.
bool runConstantFold(Kernel &K);

/// Block-local common-subexpression elimination with copy propagation:
/// recomputations of pure expressions over unmodified operands are
/// forwarded to the earlier result. This is the pass that harvests the
/// redundancy exposed by thread-invariant-aware vectorization (paper §6.2).
bool runLocalCSE(Kernel &K);

/// The post-vectorization cleanup pipeline: constant folding, CSE and DCE
/// to a fixed point (bounded).
bool runCleanupPipeline(Kernel &K);

} // namespace simtvec

#endif // SIMTVEC_TRANSFORMS_PASSES_H
