//===- simtvec/transforms/Passes.h - Classical IR passes --------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical-optimization substrate the translation cache applies around
/// vectorization (paper §5.1: predicate-to-select conversion and barrier
/// block splitting before translation; "traditional compiler optimizations
/// such as basic block fusion and common subexpression elimination" after).
/// Every pass returns true when it changed the kernel.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_TRANSFORMS_PASSES_H
#define SIMTVEC_TRANSFORMS_PASSES_H

#include "simtvec/ir/Kernel.h"

namespace simtvec {

/// Replaces guarded pure instructions with an unguarded compute into a
/// fresh register followed by `selp` (paper §5.1). Guarded memory
/// operations keep their guards (a select cannot express a suppressed side
/// effect).
bool runPredicateToSelect(Kernel &K);

/// Splits basic blocks so every `bar.sync` ends its block, followed by an
/// unconditional branch to the continuation (the yield lowering turns these
/// sites into exits, paper §3: "kernel partitioning at barriers").
bool runBarrierSplit(Kernel &K);

/// Removes pure instructions whose results are dead (liveness-based).
bool runDeadCodeElim(Kernel &K);

/// Folds instructions with all-immediate operands into `mov` of an
/// immediate, using the VM's bit-exact scalar semantics.
bool runConstantFold(Kernel &K);

/// Block-local common-subexpression elimination with copy propagation:
/// recomputations of pure expressions over unmodified operands are
/// forwarded to the earlier result. This is the pass that harvests the
/// redundancy exposed by thread-invariant-aware vectorization (paper §6.2).
bool runLocalCSE(Kernel &K);

/// The post-vectorization cleanup pipeline: constant folding, CSE and DCE
/// to a fixed point (bounded).
bool runCleanupPipeline(Kernel &K);

} // namespace simtvec

#endif // SIMTVEC_TRANSFORMS_PASSES_H
