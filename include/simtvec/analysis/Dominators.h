//===- simtvec/analysis/Dominators.h - Dominator tree -----------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate dominators via the Cooper-Harvey-Kennedy iterative algorithm.
/// Used by local CSE (dominance-scoped value reuse) and by tests of the CFG
/// substrate.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_ANALYSIS_DOMINATORS_H
#define SIMTVEC_ANALYSIS_DOMINATORS_H

#include "simtvec/analysis/CFG.h"

namespace simtvec {

/// Dominator tree over a kernel CFG rooted at block 0.
class DominatorTree {
public:
  explicit DominatorTree(const CFG &G);

  /// Immediate dominator of \p Block; the entry's idom is itself.
  /// Unreachable blocks report InvalidBlock.
  uint32_t idom(uint32_t Block) const { return IDom[Block]; }

  /// True when \p A dominates \p B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

private:
  std::vector<uint32_t> IDom;
  std::vector<uint32_t> RPONumber;
};

} // namespace simtvec

#endif // SIMTVEC_ANALYSIS_DOMINATORS_H
