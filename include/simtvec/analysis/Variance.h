//===- simtvec/analysis/Variance.h - Thread-variance analysis ---*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative thread-variance analysis (paper §6.2 and [12]): a register
/// is *thread-invariant* when every value it can hold is identical across
/// the threads of a warp executing the same block. Roots of variance are the
/// thread-index special registers (%tid.*, %laneid) and all memory loads
/// except .param loads; everything data-dependent on a variant value is
/// variant. Because warps only ever co-execute threads waiting at the same
/// entry point, control flow does not break per-warp uniformity, so the
/// fixed point is flow-insensitive over all reaching definitions.
///
/// Thread-invariant expression elimination (static warp formation) and the
/// uniform-branch ablation both consume this analysis.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_ANALYSIS_VARIANCE_H
#define SIMTVEC_ANALYSIS_VARIANCE_H

#include "simtvec/ir/Kernel.h"
#include "simtvec/support/BitSet.h"

namespace simtvec {

/// Variance-analysis assumptions.
struct VarianceOptions {
  /// Under static warp formation with the CTA's x-extent a multiple of the
  /// warp size, a warp never crosses an x-row, so %tid.y and %tid.z are
  /// warp-uniform. %tid.x and %laneid stay variant.
  bool TidYZUniform = false;

  /// Additional variance roots. The vectorizer seeds this with every
  /// register live-in at a planned entry point: threads re-grouped at an
  /// entry may come from different control-flow "phases" (e.g. different
  /// loop trip counts), so restored state is never warp-uniform even when
  /// its dataflow only touches uniform inputs.
  const BitSet *ExtraRoots = nullptr;
};

/// Thread-variance of each virtual register of a kernel.
class VarianceAnalysis {
public:
  explicit VarianceAnalysis(const Kernel &K, VarianceOptions Opts = {});

  /// True when \p R may hold different values in different threads of a
  /// warp.
  bool isVariant(RegId R) const { return Variant.test(R.Index); }

  /// True when every register operand of \p I is invariant and the
  /// instruction itself introduces no variance (it would compute the same
  /// value in every lane).
  bool isInvariantInstruction(const Instruction &I) const;

  /// Number of variant registers (for statistics).
  size_t variantCount() const { return Variant.count(); }

private:
  bool introducesVariance(const Instruction &I) const;

  VarianceOptions Opts;
  BitSet Variant;
};

} // namespace simtvec

#endif // SIMTVEC_ANALYSIS_VARIANCE_H
