//===- simtvec/analysis/Liveness.h - Backward liveness ----------*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward may-liveness over virtual registers. The yield-on-diverge
/// lowering consumes this to decide which values the exit handlers must
/// spill (live-out at divergence sites) and which values the entry handlers
/// must restore (live-in at resume blocks) — paper Algorithms 3 and 4.
///
/// The IR is not SSA: a guarded definition does not kill (the prior value
/// may flow through when the guard is false).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_ANALYSIS_LIVENESS_H
#define SIMTVEC_ANALYSIS_LIVENESS_H

#include "simtvec/analysis/CFG.h"
#include "simtvec/support/BitSet.h"

#include <functional>

namespace simtvec {

/// Per-block live-in / live-out register sets.
class Liveness {
public:
  Liveness(const Kernel &K, const CFG &G);

  const BitSet &liveIn(uint32_t Block) const { return In[Block]; }
  const BitSet &liveOut(uint32_t Block) const { return Out[Block]; }

  /// Live registers immediately before instruction \p InstIdx of \p Block
  /// (computed by a backward scan from the block's live-out).
  BitSet liveBefore(const Kernel &K, uint32_t Block, size_t InstIdx) const;

  /// Maximum number of simultaneously live registers anywhere in \p Block,
  /// weighted by \p RegCost(K, RegId) — the register-pressure input to the
  /// machine model.
  unsigned
  maxPressure(const Kernel &K, uint32_t Block,
              const std::function<unsigned(const Kernel &, RegId)> &RegCost)
      const;

private:
  std::vector<BitSet> In, Out;
};

} // namespace simtvec

#endif // SIMTVEC_ANALYSIS_LIVENESS_H
