//===- simtvec/analysis/CFG.h - Control-flow graph utilities ----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predecessor lists, reachability and traversal orders over a kernel's CFG.
/// Block 0 is the function entry; specialized kernels may have extra entry
/// points (the scheduler handles those, so the graph is still rooted at 0).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_ANALYSIS_CFG_H
#define SIMTVEC_ANALYSIS_CFG_H

#include "simtvec/ir/Kernel.h"

#include <vector>

namespace simtvec {

/// Successor/predecessor adjacency of a kernel's CFG.
class CFG {
public:
  explicit CFG(const Kernel &K);

  size_t numBlocks() const { return Succs.size(); }
  const std::vector<uint32_t> &successors(uint32_t Block) const {
    return Succs[Block];
  }
  const std::vector<uint32_t> &predecessors(uint32_t Block) const {
    return Preds[Block];
  }

  /// Reverse post-order from block 0 (unreachable blocks appended at the
  /// end so dataflow still covers them).
  const std::vector<uint32_t> &reversePostOrder() const { return RPO; }

  /// True when \p Block is reachable from the entry.
  bool isReachable(uint32_t Block) const { return Reachable[Block]; }

private:
  std::vector<std::vector<uint32_t>> Succs, Preds;
  std::vector<uint32_t> RPO;
  std::vector<bool> Reachable;
};

} // namespace simtvec

#endif // SIMTVEC_ANALYSIS_CFG_H
