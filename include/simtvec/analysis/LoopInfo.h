//===- simtvec/analysis/LoopInfo.h - Natural-loop detection -----*- C++ -*-===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops via dominator-based back-edge detection. Used by the
/// statistics tooling (loop-heavy kernels drive the divergence behaviour of
/// Figures 6/7) and available to future transforms (the paper's envisioned
/// loop-aware pack hoisting).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_ANALYSIS_LOOPINFO_H
#define SIMTVEC_ANALYSIS_LOOPINFO_H

#include "simtvec/analysis/Dominators.h"

namespace simtvec {

/// One natural loop: a header and the set of blocks on paths from the
/// back-edge sources to the header.
struct Loop {
  uint32_t Header = InvalidBlock;
  std::vector<uint32_t> BackEdgeSources; ///< latch blocks
  std::vector<uint32_t> Blocks;          ///< includes the header; sorted
};

/// Natural loops of a kernel CFG (loops sharing a header are merged).
class LoopInfo {
public:
  LoopInfo(const CFG &G, const DominatorTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  /// True when \p Block belongs to any loop.
  bool isInLoop(uint32_t Block) const { return InAnyLoop[Block]; }

  /// The innermost... this analysis does not nest loops; returns the loop
  /// whose header is \p Block, or null.
  const Loop *loopWithHeader(uint32_t Block) const;

private:
  std::vector<Loop> Loops;
  std::vector<bool> InAnyLoop;
};

} // namespace simtvec

#endif // SIMTVEC_ANALYSIS_LOOPINFO_H
