//===- tests/ir_test.cpp - SVIR data structure unit tests -----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/IRBuilder.h"
#include "simtvec/ir/Module.h"
#include "simtvec/ir/Printer.h"
#include "simtvec/ir/ScalarOps.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace simtvec;

namespace {

TEST(TypeTest, Properties) {
  EXPECT_TRUE(Type::pred().isPred());
  EXPECT_TRUE(Type::f32().isFloat());
  EXPECT_TRUE(Type::f64().isFloat());
  EXPECT_TRUE(Type::s32().isInteger());
  EXPECT_TRUE(Type::s32().isSigned());
  EXPECT_FALSE(Type::u32().isSigned());
  EXPECT_EQ(Type::u8().bitWidth(), 8u);
  EXPECT_EQ(Type::f64().byteSize(), 8u);
  EXPECT_EQ(Type::pred().bitWidth(), 1u);
}

TEST(TypeTest, VectorForms) {
  Type V = Type::f32().withLanes(4);
  EXPECT_TRUE(V.isVector());
  EXPECT_EQ(V.lanes(), 4u);
  EXPECT_EQ(V.scalar(), Type::f32());
  EXPECT_EQ(V.str(), "<4 x .f32>");
  EXPECT_EQ(Type::u64().str(), ".u64");
  EXPECT_NE(V, Type::f32());
  EXPECT_EQ(V, Type(ScalarKind::F32, 4));
}

TEST(OpcodeTest, Properties) {
  EXPECT_TRUE(isVectorizable(Opcode::Mad));
  EXPECT_TRUE(isVectorizable(Opcode::Setp));
  EXPECT_FALSE(isVectorizable(Opcode::Ld));
  EXPECT_FALSE(isVectorizable(Opcode::AtomAdd));
  EXPECT_TRUE(isMemoryOp(Opcode::St));
  EXPECT_FALSE(isMemoryOp(Opcode::Add));
  EXPECT_TRUE(isTerminator(Opcode::Bra));
  EXPECT_TRUE(isTerminator(Opcode::Yield));
  EXPECT_FALSE(isTerminator(Opcode::BarSync));
  EXPECT_TRUE(isTranscendental(Opcode::Rsqrt));
  EXPECT_FALSE(isTranscendental(Opcode::Div));
  EXPECT_TRUE(hasResult(Opcode::Ld));
  EXPECT_FALSE(hasResult(Opcode::St));
  EXPECT_TRUE(hasSideEffects(Opcode::AtomAdd));
  EXPECT_FALSE(hasSideEffects(Opcode::Mul));
  EXPECT_STREQ(opcodeName(Opcode::VoteSum), "vote.sum");
}

TEST(OperandTest, IntegerImmediates) {
  Operand O = Operand::immInt(Type::s32(), -5);
  EXPECT_EQ(O.immInt(), -5);
  Operand U = Operand::immInt(Type::u32(), 0xFFFFFFFFu);
  EXPECT_EQ(U.immInt(), 0xFFFFFFFFll);
  Operand P = Operand::immInt(Type::pred(), 1);
  EXPECT_EQ(P.immInt(), 1);
}

TEST(OperandTest, FloatImmediates) {
  Operand F = Operand::immF32(1.5f);
  EXPECT_EQ(F.immF32(), 1.5f);
  Operand D = Operand::immF64(-2.25);
  EXPECT_EQ(D.immF64(), -2.25);
}

TEST(OperandTest, SpecialVariance) {
  EXPECT_TRUE(isThreadVariant(SReg::TidX));
  EXPECT_TRUE(isThreadVariant(SReg::LaneId));
  EXPECT_FALSE(isThreadVariant(SReg::CTAIdX));
  EXPECT_FALSE(isThreadVariant(SReg::NTidX));
  EXPECT_FALSE(isThreadVariant(SReg::WarpBaseTid));
  EXPECT_STREQ(sregName(SReg::NCTAIdZ), "%nctaid.z");
}

TEST(KernelTest, ParamLayoutNaturalAlignment) {
  Kernel K;
  K.addParam("p64", Type::u64()); // offset 0
  K.addParam("p32", Type::u32()); // offset 8
  K.addParam("q64", Type::u64()); // offset 16 (aligned up from 12)
  EXPECT_EQ(K.Params[0].Offset, 0u);
  EXPECT_EQ(K.Params[1].Offset, 8u);
  EXPECT_EQ(K.Params[2].Offset, 16u);
  EXPECT_EQ(K.ParamBytes, 24u);
  EXPECT_EQ(K.findParam("p32"), 1u);
  EXPECT_EQ(K.findParam("missing"), ~0u);
}

TEST(KernelTest, SharedVarLayout) {
  Kernel K;
  K.addSharedVar("a", 10);
  K.addSharedVar("b", 4);
  EXPECT_EQ(K.SharedVars[0].Offset, 0u);
  EXPECT_EQ(K.SharedVars[1].Offset, 16u); // 16-aligned
  EXPECT_EQ(K.SharedBytes, 20u);
}

TEST(KernelTest, Successors) {
  Kernel K;
  RegId P = K.addReg("p", Type::pred());
  uint32_t B0 = K.addBlock("b0");
  uint32_t B1 = K.addBlock("b1");
  uint32_t B2 = K.addBlock("b2");
  IRBuilder B(K);
  B.setBlock(B0);
  B.braCond(P, false, B2, B1);
  B.setBlock(B1);
  B.bra(B2);
  B.setBlock(B2);
  B.ret();
  EXPECT_EQ(K.successors(B0), (std::vector<uint32_t>{B2, B1}));
  EXPECT_EQ(K.successors(B1), (std::vector<uint32_t>{B2}));
  EXPECT_TRUE(K.successors(B2).empty());
}

TEST(KernelTest, FindHelpers) {
  Kernel K;
  RegId R = K.addReg("acc", Type::f32());
  K.addBlock("entry");
  EXPECT_EQ(K.findReg("acc"), R);
  EXPECT_FALSE(K.findReg("nope").isValid());
  EXPECT_EQ(K.findBlock("entry"), 0u);
  EXPECT_EQ(K.findBlock("nope"), InvalidBlock);
}

TEST(ModuleTest, FindKernel) {
  Module M;
  M.addKernel("a");
  M.addKernel("b");
  EXPECT_NE(M.findKernel("a"), nullptr);
  EXPECT_EQ(M.findKernel("c"), nullptr);
  EXPECT_EQ(M.kernels().size(), 2u);
}

//===----------------------------------------------------------------------===
// Printer <-> parser round trip
//===----------------------------------------------------------------------===

/// A kernel exercising every printable construct.
const char *RoundTripSrc = R"(
.kernel everything (.param .u64 buf, .param .u32 n, .param .f32 scale)
{
  .shared .b8 smem[64];
  .local .b8 lmem[32];
  .reg .u32 %a, %b, %c;
  .reg .u64 %addr;
  .reg .f32 %f, %g;
  .reg .f64 %d;
  .reg .pred %p, %q;

entry:
  mov.u32 %a, %tid.x;
  mad.u32 %a, %ntid.y, %ctaid.z, %a;
  ld.param.u32 %b, [n];
  setp.lt.u32 %p, %a, %b;
  and.pred %q, %p, %p;
  @!%q bra out, work;
work:
  cvt.u64.u32 %addr, %a;
  shl.u64 %addr, %addr, 2;
  ld.global.f32 %f, [%addr+16];
  ld.param.f32 %g, [scale];
  mad.f32 %f, %f, %g, 0f3F800000;
  sqrt.f32 %f, %f;
  cvt.f64.f32 %d, %f;
  cvt.f32.f64 %g, %d;
  selp.f32 %f, %f, %g, %p;
  st.shared.f32 [smem+8], %f;
  bar.sync;
  ld.shared.f32 %g, [smem+8];
  st.local.f32 [lmem], %g;
  ld.local.f32 %g, [lmem];
  atom.global.add.u32 %c, [%addr], 1;
  st.global.f32 [%addr+16], %g;
  bra out;
out:
  ret;
}
)";

TEST(PrinterTest, RoundTripIsStable) {
  auto M1 = parseModuleOrDie(RoundTripSrc);
  std::string P1 = printModule(*M1);
  auto M2OrErr = parseModule(P1);
  ASSERT_TRUE(static_cast<bool>(M2OrErr)) << M2OrErr.status().message();
  EXPECT_FALSE(verifyModule(**M2OrErr).isError());
  std::string P2 = printModule(**M2OrErr);
  EXPECT_EQ(P1, P2);
}

TEST(PrinterTest, SpecializedConstructsRoundTrip) {
  // Hand-build a kernel with vector ops, runtime intrinsics and metadata.
  Module M;
  Kernel &K = M.addKernel("spec");
  K.WarpSize = 4;
  K.SpillBytes = 32;
  Type V4F = Type::f32().withLanes(4);
  Type V4P = Type::pred().withLanes(4);
  RegId V = K.addReg("v", V4F);
  RegId S = K.addReg("s", Type::f32());
  RegId PV = K.addReg("pv", V4P);
  RegId Sum = K.addReg("sum", Type::u32());
  RegId Eids = K.addReg("eids", Type::u32().withLanes(4));

  uint32_t Sched = K.addBlock("sched", BlockKind::Scheduler);
  uint32_t Body = K.addBlock("body");
  uint32_t Exit = K.addBlock("bexit", BlockKind::ExitHandler);
  uint32_t Entry1 = K.addBlock("e1", BlockKind::EntryHandler);
  K.EntryBlocks = {Body, Entry1};

  IRBuilder B(K);
  B.setBlock(Sched);
  B.makeSwitch(Operand::special(SReg::EntryId), {1}, {Entry1}, Body);
  B.setBlock(Body);
  B.broadcast(V, Operand::immF32(2.0f));
  B.extractElement(S, Operand::reg(V), 2);
  B.insertElement(V, Operand::reg(V), Operand::reg(S), 1);
  B.setp(CmpOp::Gt, V4F, PV, Operand::reg(V), Operand::immF32(1.0f));
  B.voteSum(Sum, Operand::reg(PV));
  B.selp(Type::u32().withLanes(4), Eids, Operand::immInt(Type::u32(), 1),
         Operand::immInt(Type::u32(), 0), Operand::reg(PV));
  B.bra(Exit);
  B.setBlock(Exit);
  B.spill(Operand::reg(V), V4F, 0);
  B.setRPoint(Operand::reg(Eids));
  B.setRStatus(ResumeStatus::Branch);
  B.yield();
  B.setBlock(Entry1);
  B.restore(V, 0);
  B.bra(Body);

  ASSERT_FALSE(verifyKernel(K).isError()) << verifyKernel(K).message();
  std::string P1 = printKernel(K);
  auto M2OrErr = parseModule(P1);
  ASSERT_TRUE(static_cast<bool>(M2OrErr)) << M2OrErr.status().message();
  const Kernel *K2 = (*M2OrErr)->findKernel("spec");
  ASSERT_NE(K2, nullptr);
  EXPECT_EQ(K2->WarpSize, 4u);
  EXPECT_EQ(K2->SpillBytes, 32u);
  EXPECT_EQ(K2->EntryBlocks.size(), 2u);
  EXPECT_EQ(K2->Blocks[0].Kind, BlockKind::Scheduler);
  EXPECT_EQ(printKernel(*K2), P1);
}

//===----------------------------------------------------------------------===
// Verifier negative cases
//===----------------------------------------------------------------------===

struct BadKernelCase {
  const char *Name;
  std::function<void(Kernel &)> Build;
  const char *ExpectSubstring;
};

class VerifierNegative : public ::testing::TestWithParam<BadKernelCase> {};

TEST_P(VerifierNegative, RejectsInvalidKernel) {
  Kernel K;
  K.Name = "bad";
  GetParam().Build(K);
  Status E = verifyKernel(K);
  ASSERT_TRUE(E.isError());
  EXPECT_NE(E.message().find(GetParam().ExpectSubstring), std::string::npos)
      << E.message();
}

INSTANTIATE_TEST_SUITE_P(
    Verifier, VerifierNegative,
    ::testing::Values(
        BadKernelCase{"NoBlocks", [](Kernel &) {}, "no basic blocks"},
        BadKernelCase{"EmptyBlock",
                      [](Kernel &K) { K.addBlock("b"); },
                      "empty basic block"},
        BadKernelCase{"NoTerminator",
                      [](Kernel &K) {
                        RegId R = K.addReg("r", Type::u32());
                        K.addBlock("b");
                        IRBuilder B(K);
                        B.setBlock(0);
                        B.mov(R, Operand::immInt(Type::u32(), 1));
                      },
                      "does not end with a terminator"},
        BadKernelCase{"TypeMismatch",
                      [](Kernel &K) {
                        RegId F = K.addReg("f", Type::f32());
                        RegId U = K.addReg("u", Type::u32());
                        K.addBlock("b");
                        IRBuilder B(K);
                        B.setBlock(0);
                        B.add(Type::f32(), F, Operand::reg(U),
                              Operand::reg(U));
                        B.ret();
                      },
                      "float vs integer"},
        BadKernelCase{"BadBranchTarget",
                      [](Kernel &K) {
                        K.addBlock("b");
                        IRBuilder B(K);
                        B.setBlock(0);
                        B.bra(99);
                      },
                      "out of range"},
        BadKernelCase{"GuardNotPred",
                      [](Kernel &K) {
                        RegId U = K.addReg("u", Type::u32());
                        K.addBlock("b");
                        IRBuilder B(K);
                        B.setBlock(0);
                        Instruction I(Opcode::Mov, Type::u32());
                        I.Dst = U;
                        I.Srcs = {Operand::immInt(Type::u32(), 0)};
                        I.Guard = U;
                        B.append(std::move(I));
                        B.ret();
                      },
                      "guard must be a scalar predicate"},
        BadKernelCase{"VectorLoad",
                      [](Kernel &K) {
                        RegId V = K.addReg("v", Type::f32().withLanes(4));
                        RegId A = K.addReg("a", Type::u64());
                        K.addBlock("b");
                        IRBuilder B(K);
                        B.setBlock(0);
                        Instruction I(Opcode::Ld, Type::f32().withLanes(4));
                        I.Dst = V;
                        I.Srcs = {Operand::reg(A)};
                        B.append(std::move(I));
                        B.ret();
                      },
                      "not vectorizable"},
        BadKernelCase{"SetpWrongDst",
                      [](Kernel &K) {
                        RegId U = K.addReg("u", Type::u32());
                        K.addBlock("b");
                        IRBuilder B(K);
                        B.setBlock(0);
                        B.setp(CmpOp::Eq, Type::u32(), U,
                               Operand::immInt(Type::u32(), 1),
                               Operand::immInt(Type::u32(), 2));
                        B.ret();
                      },
                      "setp must write a predicate"},
        BadKernelCase{"MidBlockTerminator",
                      [](Kernel &K) {
                        K.addBlock("b");
                        IRBuilder B(K);
                        B.setBlock(0);
                        B.ret();
                        // Force a second terminator behind the first.
                        K.Blocks[0].Insts.push_back(
                            Instruction(Opcode::Ret));
                      },
                      "terminator in the middle"},
        BadKernelCase{"VectorWidthMismatch",
                      [](Kernel &K) {
                        K.WarpSize = 4;
                        K.addReg("v", Type::f32().withLanes(2));
                        K.addBlock("b");
                        IRBuilder B(K);
                        B.setBlock(0);
                        B.ret();
                      },
                      "width differs from warp size"}),
    [](const ::testing::TestParamInfo<BadKernelCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===
// Scalar operation semantics (shared by VM and constant folder)
//===----------------------------------------------------------------------===

TEST(ScalarOpsTest, IntegerDivRemByZero) {
  bool Bad = false;
  EXPECT_EQ(evalBinary(Opcode::Div, ScalarKind::S32, 100, 0, Bad), 0u);
  EXPECT_EQ(evalBinary(Opcode::Rem, ScalarKind::U32, 100, 0, Bad), 0u);
  EXPECT_FALSE(Bad);
}

TEST(ScalarOpsTest, ShiftMasking) {
  bool Bad = false;
  // Shift counts mask to the type width (x86 semantics).
  EXPECT_EQ(evalBinary(Opcode::Shl, ScalarKind::U32, 1, 33, Bad),
            1ull << 1);
  EXPECT_EQ(evalBinary(Opcode::Shr, ScalarKind::S32,
                       static_cast<uint32_t>(-8), 1, Bad),
            static_cast<uint32_t>(-4)); // arithmetic for signed
  EXPECT_FALSE(Bad);
}

TEST(ScalarOpsTest, InvalidCombinationsFlagged) {
  bool Bad = false;
  evalBinary(Opcode::Shl, ScalarKind::F32, 0, 0, Bad);
  EXPECT_TRUE(Bad);
  Bad = false;
  evalUnary(Opcode::Sin, ScalarKind::U32, 0, Bad);
  EXPECT_TRUE(Bad);
}

TEST(ScalarOpsTest, FloatToIntSaturates) {
  float Big = 1e20f;
  uint64_t Bits;
  static_assert(sizeof(float) == 4, "");
  uint32_t B32;
  std::memcpy(&B32, &Big, 4);
  Bits = B32;
  EXPECT_EQ(evalConvert(ScalarKind::S32, ScalarKind::F32, Bits),
            static_cast<uint32_t>(INT32_MAX));
  float Nan = std::nanf("");
  std::memcpy(&B32, &Nan, 4);
  EXPECT_EQ(evalConvert(ScalarKind::S32, ScalarKind::F32, B32), 0u);
}

TEST(ScalarOpsTest, CmpNaNBehaviour) {
  float Nan = std::nanf("");
  uint32_t B32;
  std::memcpy(&B32, &Nan, 4);
  EXPECT_FALSE(evalCmp(CmpOp::Lt, ScalarKind::F32, B32, B32));
  EXPECT_FALSE(evalCmp(CmpOp::Eq, ScalarKind::F32, B32, B32));
  EXPECT_TRUE(evalCmp(CmpOp::Ne, ScalarKind::F32, B32, B32));
}

} // namespace
