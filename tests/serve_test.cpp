//===- tests/serve_test.cpp - Multi-tenant serving daemon tests -----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Serving-daemon coverage, all against an in-process `ServeDaemon` on a
/// per-test socket:
///
///  - concurrent tenant sessions with disjoint outputs reproduce the eager
///    single-process results bit-identically;
///  - a session whose launch traps (out-of-bounds access) receives its own
///    deferred error at Synchronize while a concurrent healthy session
///    completes cleanly — per-session error isolation;
///  - protocol fuzz: truncated frames, bad magic, hostile lengths, garbage
///    payloads and protocol-order violations never crash the daemon; each
///    is rejected with a descriptive Error frame and the daemon keeps
///    serving new clients;
///  - the FairScheduler's admission window and round-robin rotation,
///    driven directly (no sockets);
///  - the CacheGovernor keeps a capped artifact store under its byte cap
///    and publishes cache.prune_* metrics;
///  - WorkerPool::drain() quiesces the pool and is safe against concurrent
///    parallelFor/submit traffic (the daemon-shutdown ordering fix).
///
/// The Serve* suites run under SIMTVEC_SANITIZE=thread via
/// tools/tsan_check.sh.
///
//===----------------------------------------------------------------------===//

#include "simtvec/serve/Client.h"
#include "simtvec/serve/Server.h"

#include "simtvec/core/SpecializationService.h"
#include "simtvec/runtime/WorkerPool.h"
#include "simtvec/support/Format.h"
#include "simtvec/support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simtvec;
using namespace simtvec::serve;

namespace {

namespace fs = std::filesystem;

/// Per-test socket path, short enough for sun_path.
std::string tempSocketPath(const char *Tag) {
  static std::atomic<unsigned> Seq{0};
  return formatString("/tmp/svt_%d_%s_%u.sock", static_cast<int>(::getpid()),
                      Tag, Seq.fetch_add(1));
}

const char *ScaleSrc = R"(
.kernel scale (.param .u64 buf, .param .u32 n, .param .u32 k)
{
  .reg .u32 %i, %n, %v, %k;
  .reg .u64 %p, %off;
  .reg .pred %q;
entry:
  mov.u32 %i, %tid.x;
  mov.u32 %n, %ntid.x;
  mul.u32 %n, %n, %ctaid.x;
  add.u32 %i, %i, %n;
  ld.param.u32 %n, [n];
  setp.ge.u32 %q, %i, %n;
  @%q bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %p, [buf];
  add.u64 %p, %p, %off;
  ld.param.u32 %k, [k];
  ld.global.u32 %v, [%p];
  mad.u32 %v, %v, %k, 1;
  st.global.u32 [%p], %v;
  bra done;
done:
  ret;
}
)";

/// Faults deterministically: an out-of-bounds global load.
const char *TrapSrc = R"(
.kernel boom (.param .u64 out)
{
  .reg .u32 %r;
  .reg .u64 %a, %o;
entry:
  mov.u64 %a, 0xFFFFFFF0;
  ld.global.u32 %r, [%a];
  ld.param.u64 %o, [out];
  st.global.u32 [%o], %r;
  ret;
}
)";

/// What one tenant computes, run eagerly in-process: the bit-exact
/// reference the served session must reproduce.
std::vector<uint32_t> eagerScaleReference(uint32_t N, uint32_t K,
                                          uint32_t Salt) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> Host(N);
  for (uint32_t I = 0; I < N; ++I)
    Host[I] = I * 3 + Salt;
  Stream S;
  Dev.copyToDeviceAsync(S, D, Host.data(), N * sizeof(uint32_t));
  Params P;
  P.u64(D).u32(N).u32(K);
  Prog->launchAsync(S, Dev, "scale", {(N + 63) / 64, 1, 1}, {64, 1, 1}, P);
  Dev.copyFromDeviceAsync(S, Host.data(), D, N * sizeof(uint32_t));
  EXPECT_FALSE(S.synchronize().isError());
  return Host;
}

/// RAII daemon on a temp socket.
struct DaemonFixture {
  ServeOptions Opts;
  std::unique_ptr<ServeDaemon> Daemon;
  explicit DaemonFixture(const char *Tag, unsigned MaxInFlight = 8) {
    Opts.SocketPath = tempSocketPath(Tag);
    Opts.MaxInFlight = MaxInFlight;
    Opts.DeviceBytes = 1 << 20;
    Opts.Spec = SpecializationOptions(); // hermetic: no env cache dir
    Daemon = std::make_unique<ServeDaemon>(Opts);
    Status E = Daemon->start();
    EXPECT_FALSE(E.isError()) << E.message();
  }
  ~DaemonFixture() {
    Daemon->requestStop();
    ::unlink(Opts.SocketPath.c_str());
  }
};

TEST(ServeProtocol, ParamsRoundTripBitIdentical) {
  Params P;
  P.u64(0x1122334455667788ull)
      .u32(42)
      .s32(-7)
      .f32(1.5f)
      .f64(-2.25)
      .s64(-12345678901234ll);
  ByteWriter W;
  ASSERT_TRUE(encodeParams(W, P));
  ByteReader R(W.bytes());
  Params Q;
  ASSERT_TRUE(decodeParams(R, Q));
  EXPECT_TRUE(R.exhausted());
  ASSERT_EQ(P.bytes().size(), Q.bytes().size());
  EXPECT_EQ(0, std::memcmp(P.bytes().data(), Q.bytes().data(),
                           P.bytes().size()));
  ASSERT_EQ(P.elements().size(), Q.elements().size());
  for (size_t I = 0; I < P.elements().size(); ++I) {
    EXPECT_EQ(P.elements()[I].Ty, Q.elements()[I].Ty);
    EXPECT_EQ(P.elements()[I].Offset, Q.elements()[I].Offset);
  }
}

TEST(ServeProtocol, FrameHeaderRejectsBadMagic) {
  uint8_t H[FrameHeaderBytes];
  encodeFrameHeader(H, MsgType::Hello, 12);
  uint32_t Type = 0, Len = 0;
  EXPECT_TRUE(decodeFrameHeader(H, Type, Len));
  EXPECT_EQ(Type, static_cast<uint32_t>(MsgType::Hello));
  EXPECT_EQ(Len, 12u);
  H[0] ^= 0xFF;
  EXPECT_FALSE(decodeFrameHeader(H, Type, Len));
}

TEST(Serve, HandshakeLoadLaunchCopyOut) {
  DaemonFixture D("basic");
  ServeClient C;
  Status E = C.connect(D.Opts.SocketPath, "t0");
  ASSERT_FALSE(E.isError()) << E.message();
  EXPECT_NE(C.sessionId(), 0u);
  EXPECT_EQ(C.deviceBytes(), D.Opts.DeviceBytes);

  auto Prog = C.loadProgram(ScaleSrc);
  ASSERT_TRUE(static_cast<bool>(Prog)) << Prog.status().message();

  constexpr uint32_t N = 777;
  auto Addr = C.alloc(N * sizeof(uint32_t));
  ASSERT_TRUE(static_cast<bool>(Addr)) << Addr.status().message();

  std::vector<uint32_t> In(N), Out(N, 0);
  for (uint32_t I = 0; I < N; ++I)
    In[I] = I * 3 + 1;
  ASSERT_FALSE(C.copyIn(*Addr, In.data(), N * sizeof(uint32_t)).isError());

  Params P;
  P.u64(*Addr).u32(N).u32(2);
  auto Seq = C.launch(*Prog, "scale", {(N + 63) / 64, 1, 1}, {64, 1, 1}, P);
  ASSERT_TRUE(static_cast<bool>(Seq)) << Seq.status().message();
  EXPECT_EQ(*Seq, 1u);

  ASSERT_FALSE(C.copyOut(Out.data(), *Addr, N * sizeof(uint32_t)).isError());
  std::vector<uint32_t> Ref = eagerScaleReference(N, 2, 1);
  EXPECT_EQ(0, std::memcmp(Out.data(), Ref.data(), N * sizeof(uint32_t)));

  ASSERT_FALSE(C.synchronize().isError());
  EXPECT_EQ(C.launchesCompleted(), 1u);

  // Stats surface both session counters and the global registry.
  auto SV = C.statValue("session.launches");
  ASSERT_TRUE(static_cast<bool>(SV));
  EXPECT_EQ(*SV, 1u);
  C.close();
}

TEST(Serve, ConcurrentSessionsMatchEagerExecution) {
  DaemonFixture D("conc");
  constexpr int Tenants = 4;
  constexpr uint32_t N = 1024;
  std::vector<std::thread> Hosts;
  Hosts.reserve(Tenants);
  for (int T = 0; T < Tenants; ++T)
    Hosts.emplace_back([&, T] {
      const uint32_t Salt = static_cast<uint32_t>(T) * 101 + 5;
      const uint32_t K = static_cast<uint32_t>(T % 3) + 2;
      ServeClient C;
      Status E = C.connect(D.Opts.SocketPath, formatString("tenant%d", T));
      ASSERT_FALSE(E.isError()) << E.message();
      auto Prog = C.loadProgram(ScaleSrc);
      ASSERT_TRUE(static_cast<bool>(Prog)) << Prog.status().message();
      auto Addr = C.alloc(N * sizeof(uint32_t));
      ASSERT_TRUE(static_cast<bool>(Addr));
      std::vector<uint32_t> In(N), Out(N, 0);
      for (uint32_t I = 0; I < N; ++I)
        In[I] = I * 3 + Salt;
      for (int Rep = 0; Rep < 4; ++Rep) {
        ASSERT_FALSE(
            C.copyIn(*Addr, In.data(), N * sizeof(uint32_t)).isError());
        Params P;
        P.u64(*Addr).u32(N).u32(K);
        auto Seq =
            C.launch(*Prog, "scale", {(N + 63) / 64, 1, 1}, {64, 1, 1}, P);
        ASSERT_TRUE(static_cast<bool>(Seq)) << Seq.status().message();
        ASSERT_FALSE(
            C.copyOut(Out.data(), *Addr, N * sizeof(uint32_t)).isError());
        std::vector<uint32_t> Ref = eagerScaleReference(N, K, Salt);
        ASSERT_EQ(0,
                  std::memcmp(Out.data(), Ref.data(), N * sizeof(uint32_t)))
            << "tenant " << T << " rep " << Rep;
      }
      Status SE = C.synchronize();
      EXPECT_FALSE(SE.isError()) << SE.message();
    });
  for (std::thread &H : Hosts)
    H.join();
  // Every tenant loaded identical source: the daemon compiled one Program.
  EXPECT_EQ(D.Daemon->counters().SessionsAccepted,
            static_cast<uint64_t>(Tenants));
}

TEST(Serve, TrappingSessionIsIsolatedFromHealthyOne) {
  DaemonFixture D("trap");

  std::atomic<bool> TrapDone{false};
  std::thread Trapper([&] {
    ServeClient C;
    ASSERT_FALSE(C.connect(D.Opts.SocketPath, "trapper").isError());
    auto Prog = C.loadProgram(TrapSrc);
    ASSERT_TRUE(static_cast<bool>(Prog)) << Prog.status().message();
    auto Addr = C.alloc(64);
    ASSERT_TRUE(static_cast<bool>(Addr));
    Params P;
    P.u64(*Addr);
    auto Seq = C.launch(*Prog, "boom", {1, 1, 1}, {1, 1, 1}, P);
    ASSERT_TRUE(static_cast<bool>(Seq)); // fire-and-forget: queueing is OK
    Status E = C.synchronize();          // ...the trap lands here
    ASSERT_TRUE(E.isError());
    EXPECT_NE(E.message().find("out-of-bounds"), std::string::npos)
        << E.message();
    // Sticky-until-reported, then clear: the session is usable again.
    EXPECT_FALSE(C.synchronize().isError());
    TrapDone.store(true);
  });

  // Healthy tenant runs concurrently and must be untouched by the trap.
  ServeClient C;
  ASSERT_FALSE(C.connect(D.Opts.SocketPath, "healthy").isError());
  auto Prog = C.loadProgram(ScaleSrc);
  ASSERT_TRUE(static_cast<bool>(Prog)) << Prog.status().message();
  constexpr uint32_t N = 512;
  auto Addr = C.alloc(N * sizeof(uint32_t));
  ASSERT_TRUE(static_cast<bool>(Addr));
  std::vector<uint32_t> In(N), Out(N, 0);
  for (uint32_t I = 0; I < N; ++I)
    In[I] = I * 3 + 9;
  for (int Rep = 0; Rep < 8; ++Rep) {
    ASSERT_FALSE(C.copyIn(*Addr, In.data(), N * sizeof(uint32_t)).isError());
    Params P;
    P.u64(*Addr).u32(N).u32(3);
    ASSERT_TRUE(static_cast<bool>(
        C.launch(*Prog, "scale", {(N + 63) / 64, 1, 1}, {64, 1, 1}, P)));
    ASSERT_FALSE(
        C.copyOut(Out.data(), *Addr, N * sizeof(uint32_t)).isError());
  }
  Status E = C.synchronize();
  EXPECT_FALSE(E.isError()) << E.message();
  std::vector<uint32_t> Ref = eagerScaleReference(N, 3, 9);
  EXPECT_EQ(0, std::memcmp(Out.data(), Ref.data(), N * sizeof(uint32_t)));

  Trapper.join();
  EXPECT_TRUE(TrapDone.load());
}

TEST(Serve, RejectedRequestsKeepTheSessionAlive) {
  DaemonFixture D("reject");
  ServeClient C;
  ASSERT_FALSE(C.connect(D.Opts.SocketPath).isError());

  // Unknown program handle.
  Params Empty;
  auto Seq = C.launch(0xdeadbeef, "nope", {1, 1, 1}, {1, 1, 1}, Empty);
  ASSERT_FALSE(static_cast<bool>(Seq));
  EXPECT_NE(Seq.status().message().find("unknown program"),
            std::string::npos);

  // Arena exhaustion.
  auto Big = C.alloc(D.Opts.DeviceBytes * 2);
  ASSERT_FALSE(static_cast<bool>(Big));

  // Out-of-arena copies, both directions.
  uint8_t Byte = 0;
  ASSERT_TRUE(C.copyIn(D.Opts.DeviceBytes + 16, &Byte, 1).isError());
  ASSERT_TRUE(C.copyOut(&Byte, D.Opts.DeviceBytes + 16, 1).isError());

  // Compile rejection surfaces the parser message.
  auto BadProg = C.loadProgram(".kernel broken {");
  ASSERT_FALSE(static_cast<bool>(BadProg));

  // After all of the above the very same session still serves real work.
  auto Prog = C.loadProgram(ScaleSrc);
  ASSERT_TRUE(static_cast<bool>(Prog)) << Prog.status().message();
  constexpr uint32_t N = 64;
  auto Addr = C.alloc(N * sizeof(uint32_t));
  ASSERT_TRUE(static_cast<bool>(Addr));
  std::vector<uint32_t> In(N, 5), Out(N, 0);
  ASSERT_FALSE(C.copyIn(*Addr, In.data(), N * sizeof(uint32_t)).isError());
  Params P;
  P.u64(*Addr).u32(N).u32(2);
  ASSERT_TRUE(static_cast<bool>(
      C.launch(*Prog, "scale", {1, 1, 1}, {64, 1, 1}, P)));
  ASSERT_FALSE(C.copyOut(Out.data(), *Addr, N * sizeof(uint32_t)).isError());
  for (uint32_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], 11u);
  EXPECT_FALSE(C.synchronize().isError());
}

/// Raw-socket helper for the fuzz tests: connect without the client
/// library so malformed bytes can go on the wire.
int rawConnect(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  EXPECT_EQ(0,
            ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)));
  return Fd;
}

/// Reads whatever the daemon sends until EOF; returns the raw bytes.
std::vector<uint8_t> drainToEof(int Fd) {
  std::vector<uint8_t> All;
  uint8_t Buf[512];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    All.insert(All.end(), Buf, Buf + N);
  }
  return All;
}

TEST(ServeFuzz, MalformedFramesNeverCrashTheDaemon) {
  DaemonFixture D("fuzz");

  { // Garbage that is not even a header.
    int Fd = rawConnect(D.Opts.SocketPath);
    const char *Junk = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(Fd, Junk, std::strlen(Junk), MSG_NOSIGNAL), 0);
    std::vector<uint8_t> Reply = drainToEof(Fd); // Error frame, then close
    EXPECT_FALSE(Reply.empty());
    ::close(Fd);
  }

  { // Valid magic, hostile length (4 GiB-ish): must reject, not allocate.
    int Fd = rawConnect(D.Opts.SocketPath);
    uint8_t H[FrameHeaderBytes];
    encodeFrameHeader(H, MsgType::Hello, 0xFFFFFF00u);
    ASSERT_GT(::send(Fd, H, sizeof(H), MSG_NOSIGNAL), 0);
    std::vector<uint8_t> Reply = drainToEof(Fd);
    EXPECT_FALSE(Reply.empty());
    ::close(Fd);
  }

  { // Header promising more payload than is ever sent (truncated frame).
    int Fd = rawConnect(D.Opts.SocketPath);
    uint8_t H[FrameHeaderBytes];
    encodeFrameHeader(H, MsgType::Hello, 64);
    ASSERT_GT(::send(Fd, H, sizeof(H), MSG_NOSIGNAL), 0);
    ::shutdown(Fd, SHUT_WR); // close mid-frame
    (void)drainToEof(Fd);
    ::close(Fd);
  }

  { // Correctly framed, but a verb before Hello.
    int Fd = rawConnect(D.Opts.SocketPath);
    ByteWriter W;
    W.u64(64);
    ASSERT_FALSE(sendFrame(Fd, MsgType::Alloc, W).isError());
    std::vector<uint8_t> Reply = drainToEof(Fd);
    EXPECT_FALSE(Reply.empty());
    ::close(Fd);
  }

  { // Unknown message type.
    int Fd = rawConnect(D.Opts.SocketPath);
    ByteWriter Hello;
    Hello.u32(ProtocolVersion);
    Hello.str("fuzz");
    ASSERT_FALSE(sendFrame(Fd, MsgType::Hello, Hello).isError());
    auto Ok = recvFrame(Fd);
    ASSERT_TRUE(static_cast<bool>(Ok));
    ASSERT_FALSE(
        sendFrame(Fd, static_cast<MsgType>(777), nullptr, 0).isError());
    (void)drainToEof(Fd);
    ::close(Fd);
  }

  { // Wrong protocol version.
    int Fd = rawConnect(D.Opts.SocketPath);
    ByteWriter Hello;
    Hello.u32(ProtocolVersion + 9);
    Hello.str("fuzz");
    ASSERT_FALSE(sendFrame(Fd, MsgType::Hello, Hello).isError());
    (void)drainToEof(Fd);
    ::close(Fd);
  }

  { // Truncated verb payload behind a valid session (Launch cut short).
    int Fd = rawConnect(D.Opts.SocketPath);
    ByteWriter Hello;
    Hello.u32(ProtocolVersion);
    Hello.str("fuzz");
    ASSERT_FALSE(sendFrame(Fd, MsgType::Hello, Hello).isError());
    auto Ok = recvFrame(Fd);
    ASSERT_TRUE(static_cast<bool>(Ok));
    ByteWriter Short;
    Short.u64(1); // Launch wants far more than a program id
    ASSERT_FALSE(sendFrame(Fd, MsgType::Launch, Short).isError());
    (void)drainToEof(Fd);
    ::close(Fd);
  }

  // The daemon survived all of it and still serves a healthy client.
  ServeClient C;
  ASSERT_FALSE(C.connect(D.Opts.SocketPath, "after-fuzz").isError());
  auto Prog = C.loadProgram(ScaleSrc);
  ASSERT_TRUE(static_cast<bool>(Prog)) << Prog.status().message();
  EXPECT_FALSE(C.synchronize().isError());
  EXPECT_GE(D.Daemon->counters().ProtocolErrors, 4u);
}

TEST(ServeSched, WindowAdmissionAndRoundRobinRotation) {
  FairScheduler Sched(/*MaxInFlight=*/1, /*MaxQueued=*/16);
  Sched.addSession(1);
  Sched.addSession(2);

  std::mutex M;
  std::vector<std::pair<uint64_t, int>> Submitted; // (session, op#)
  auto Submit = [&](uint64_t Sid, int Op) {
    return [&, Sid, Op] {
      std::lock_guard<std::mutex> Lock(M);
      Submitted.emplace_back(Sid, Op);
    };
  };

  // Session 1 floods launches; session 2 trickles non-launch ops. With a
  // window of 1, session 1's second launch must wait for retirement while
  // session 2's ops keep flowing.
  ASSERT_TRUE(Sched.enqueue(1, true, Submit(1, 0)));
  ASSERT_TRUE(Sched.enqueue(1, true, Submit(1, 1)));
  ASSERT_TRUE(Sched.enqueue(2, false, Submit(2, 0)));
  ASSERT_TRUE(Sched.enqueue(2, false, Submit(2, 1)));
  Sched.flush(2); // both of session 2's ops submitted...
  {
    std::lock_guard<std::mutex> Lock(M);
    int S1 = 0, S2 = 0;
    for (auto &KV : Submitted)
      (KV.first == 1 ? S1 : S2)++;
    EXPECT_EQ(S2, 2);
    EXPECT_EQ(S1, 1) << "window of 1 must hold back the second launch";
  }
  Sched.onLaunchRetired(1); // ...which is admitted on retirement
  Sched.flush(1);
  {
    std::lock_guard<std::mutex> Lock(M);
    ASSERT_EQ(Submitted.size(), 4u);
  }
  FairScheduler::Stats St = Sched.stats();
  EXPECT_EQ(St.Dispatched, 4u);
  EXPECT_GE(St.Deferred, 1u);

  // Unknown sessions and post-removal enqueues are dropped, not crashed.
  Sched.removeSession(1);
  EXPECT_FALSE(Sched.enqueue(1, false, [] {}));
  EXPECT_FALSE(Sched.enqueue(99, false, [] {}));
  Sched.onLaunchRetired(99); // ignored
  Sched.removeSession(2);
  Sched.stop();
}

TEST(ServeGovernor, CapKeepsStoreUnderByteBudget) {
  fs::path Dir =
      fs::temp_directory_path() /
      formatString("svt_gov_%d_%u", static_cast<int>(::getpid()),
                   static_cast<unsigned>(
                       std::hash<std::thread::id>{}(std::this_thread::get_id()) &
                       0xFFFF));
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  MetricsRegistry::global().reset();
  SpecializationOptions Spec;
  Spec.CacheDir = Dir.string();
  Spec.CacheMaxBytes = 1; // everything the store gains must be pruned away

  // Two distinct programs -> at least two artifact publishes, each leaving
  // the store over the 1-byte cap, each triggering a governor pass.
  for (const char *Src : {ScaleSrc, TrapSrc}) {
    auto Prog = Program::compile(Src, MachineModel{}, Spec).take();
    Device Dev(1 << 16);
    uint64_t Addr = Dev.alloc(4096);
    Params P;
    if (Src == ScaleSrc) {
      P.u64(Addr).u32(16).u32(2);
      (void)Prog->launch(Dev, "scale", {1, 1, 1}, {16, 1, 1}, P, {});
    } else {
      P.u64(Addr);
      (void)Prog->launch(Dev, "boom", {1, 1, 1}, {1, 1, 1}, P, {});
    }
  }
  // Governor passes run as detached pool tasks; quiesce before asserting.
  WorkerPool::global().drain();

  uint64_t StoreBytes = 0;
  unsigned Files = 0;
  for (const auto &DE : fs::directory_iterator(Dir)) {
    if (!DE.is_regular_file())
      continue;
    ++Files;
    StoreBytes += DE.file_size();
  }
  EXPECT_LE(StoreBytes, Spec.CacheMaxBytes)
      << Files << " files survived the cap";

  auto Snap = MetricsRegistry::global().snapshot();
  EXPECT_GE(Snap.counterValue("cache.prune_runs"), 1u);
  EXPECT_GE(Snap.counterValue("cache.prune_evicted"), 1u);
  EXPECT_GE(Snap.counterValue("cache.prune_bytes"), 1u);
  fs::remove_all(Dir);
}

TEST(ServeGovernor, PruneStoreToBytesEvictsOldestFirst) {
  fs::path Dir = fs::temp_directory_path() /
                 formatString("svt_lru_%d", static_cast<int>(::getpid()));
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  auto Put = [&](const char *Name, size_t Bytes) {
    std::ofstream F(Dir / Name, std::ios::binary);
    std::vector<char> Z(Bytes, 'x');
    F.write(Z.data(), static_cast<std::streamsize>(Z.size()));
  };
  Put("a.svca", 100);
  Put("b.svca", 100);
  Put("c.svcp", 100);
  Put("ignored.txt", 1000); // non-store files are never touched

  std::vector<std::string> Evicted;
  auto R = SpecializationService::pruneStoreToBytes(
      Dir.string(), 150,
      [&](const std::string &Name, uint64_t) { Evicted.push_back(Name); });
  EXPECT_EQ(R.Evicted, 2u);
  EXPECT_EQ(R.BytesFreed, 200u);
  EXPECT_LE(R.StoreBytes, 150u);
  EXPECT_EQ(Evicted.size(), 2u);
  EXPECT_TRUE(fs::exists(Dir / "ignored.txt"));

  // Under the cap: a no-op that reports the store size.
  auto R2 = SpecializationService::pruneStoreToBytes(Dir.string(), 1 << 20);
  EXPECT_EQ(R2.Evicted, 0u);
  fs::remove_all(Dir);
}

TEST(ServePool, DrainQuiescesAgainstConcurrentTraffic) {
  WorkerPool &Pool = WorkerPool::global();

  // Producer keeps the pool busy with parallel jobs and detached tasks
  // while another thread drains — the daemon-shutdown race. drain() must
  // return only at true quiescence and must never tear down running work.
  std::atomic<uint64_t> Bodies{0}, TasksRun{0};
  std::thread Producer([&] {
    for (int Rep = 0; Rep < 50; ++Rep) {
      Pool.parallelFor(8, [&](unsigned) {
        Bodies.fetch_add(1, std::memory_order_relaxed);
      });
      Pool.submit(
          [&] { TasksRun.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  for (int I = 0; I < 10; ++I)
    Pool.drain(); // interleaves with live traffic; must not wedge or race
  Producer.join();
  Pool.drain(); // the barrier the daemon relies on at SIGTERM

  // Quiescent: every submitted task ran, every body ran.
  EXPECT_EQ(Bodies.load(), 50u * 8u);
  EXPECT_EQ(TasksRun.load(), 50u);
  // And the pool is still usable afterwards.
  std::atomic<unsigned> After{0};
  Pool.parallelFor(4, [&](unsigned) { After.fetch_add(1); });
  EXPECT_EQ(After.load(), 4u);
}

TEST(Serve, GracefulStopDrainsActiveSessions) {
  auto D = std::make_unique<DaemonFixture>("stop");
  ServeClient C;
  ASSERT_FALSE(C.connect(D->Opts.SocketPath, "drainee").isError());
  auto Prog = C.loadProgram(ScaleSrc);
  ASSERT_TRUE(static_cast<bool>(Prog));
  constexpr uint32_t N = 4096;
  auto Addr = C.alloc(N * sizeof(uint32_t));
  ASSERT_TRUE(static_cast<bool>(Addr));
  std::vector<uint32_t> In(N, 3);
  ASSERT_FALSE(C.copyIn(*Addr, In.data(), N * sizeof(uint32_t)).isError());
  Params P;
  P.u64(*Addr).u32(N).u32(2);
  for (int I = 0; I < 16; ++I)
    ASSERT_TRUE(static_cast<bool>(
        C.launch(*Prog, "scale", {(N + 63) / 64, 1, 1}, {64, 1, 1}, P)));

  // Stop with launches still in flight: requestStop must drain them (the
  // session flushes its queue and synchronizes its stream) and return only
  // once the WorkerPool is quiescent — never abort mid-launch.
  D->Daemon->requestStop();
  ServeDaemon::Counters Cnt = D->Daemon->counters();
  EXPECT_EQ(Cnt.Launches, 16u);
  EXPECT_EQ(Cnt.SessionsActive, 0u);

  // The socket is unlinked; the client observes a dead peer, not a hang.
  EXPECT_TRUE(C.synchronize().isError());
  D.reset();
}

TEST(Serve, SecondDaemonOnALiveSocketIsRejected) {
  DaemonFixture D("dup");
  ServeDaemon Second(D.Opts);
  Status E = Second.start();
  ASSERT_TRUE(E.isError());
  EXPECT_NE(E.message().find("live daemon"), std::string::npos);
}

} // namespace
