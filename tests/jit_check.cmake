# Native-tier gate: the background-compiled native tier and the pinned
# interpreter must be observationally identical everywhere the model can
# see — same em.* modeled-execution metrics over the full wallclock
# workload sweep — while the SIMTVEC_JIT env knob selects the tier end to
# end (the JSON header records which tier actually ran). A warm process
# must dlopen published .so artifacts without recompiling anything, the
# differential gtest suites must pass under each forced tier, and invalid
# SIMTVEC_JIT values must warn on stderr and fall back to auto.

# The tier shells out to the system C++ toolchain; without one every
# launch silently degrades to the interpreter, so there is nothing this
# gate can assert — skip cleanly.
find_program(JIT_CXX NAMES c++ g++ clang++)
if(NOT JIT_CXX)
  message(STATUS "jit_check: no host C++ toolchain found; skipping")
  return()
endif()

set(CACHE_DIR ${OUT}.cache)
file(REMOVE_RECURSE ${CACHE_DIR})
file(MAKE_DIRECTORY ${CACHE_DIR})

# --- forced-native sweep (cold: compiles and publishes .so artifacts) -------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_JIT=native
    SIMTVEC_CACHE_DIR=${CACHE_DIR} ${WALLCLOCK} --metrics ${OUT}.nat 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE nat)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "forced-native wallclock run exited with ${rc}")
endif()
file(READ ${OUT}.nat nat_json)
if(NOT nat_json MATCHES "\"jit\": \"native\"")
  message(FATAL_ERROR
    "SIMTVEC_JIT=native did not select the native tier:\n${nat_json}")
endif()
if(NOT nat MATCHES "tc\\.jit_compile +[1-9]")
  message(FATAL_ERROR "forced-native run compiled nothing (toolchain at "
    "${JIT_CXX} was found, so the tier must engage):\n${nat}")
endif()
if(NOT nat MATCHES "tc\\.jit_swap +[1-9]")
  message(FATAL_ERROR "forced-native run published no native entries:\n${nat}")
endif()

# --- forced-interpreter sweep ----------------------------------------------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_JIT=interp
    SIMTVEC_CACHE_DIR=${CACHE_DIR} ${WALLCLOCK} --metrics ${OUT}.int 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE int)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "forced-interp wallclock run exited with ${rc}")
endif()
file(READ ${OUT}.int int_json)
if(NOT int_json MATCHES "\"jit\": \"interp\"")
  message(FATAL_ERROR
    "SIMTVEC_JIT=interp did not pin the interpreter:\n${int_json}")
endif()

# Modeled counters are computed from the decoded stream, which the native
# tier replays faithfully: every em.* metric agrees bit-for-bit.
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" nat_em "${nat}")
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" int_em "${int}")
if(NOT nat_em)
  message(FATAL_ERROR "forced-native run reported no em.* metrics:\n${nat}")
endif()
if(NOT "${nat_em}" STREQUAL "${int_em}")
  message(FATAL_ERROR "modeled metrics differ between execution tiers:\n"
    "native: ${nat_em}\ninterp: ${int_em}")
endif()

# --- warm process: .so artifacts resolve from disk, zero recompiles ---------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_JIT=native
    SIMTVEC_CACHE_DIR=${CACHE_DIR} ${WALLCLOCK} --metrics ${OUT}.warm 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE warm)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm forced-native run exited with ${rc}")
endif()
if(warm MATCHES "tc\\.jit_compile +[1-9]")
  message(FATAL_ERROR
    "warm process recompiled native objects (expected dlopen hits):\n${warm}")
endif()
if(NOT warm MATCHES "tc\\.jit_hit +[1-9]")
  message(FATAL_ERROR "warm process had no native-artifact hits:\n${warm}")
endif()
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" warm_em "${warm}")
if(NOT "${nat_em}" STREQUAL "${warm_em}")
  message(FATAL_ERROR "metrics diverged between cold and warm native runs:\n"
    "cold: ${nat_em}\nwarm: ${warm_em}")
endif()

# --- differential gtest suites under each forced tier -----------------------
# ShapeExec compares engine output and counters against the IR-walking
# reference across every control-flow shape, and JitHotSwap races the
# background publish against four concurrent streams; running both under
# each forced tier re-proves the contract inside the normal test harness.
foreach(tier native interp)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_JIT=${tier}
      SIMTVEC_CACHE_DIR=${CACHE_DIR} ${TESTS} --gtest_brief=1
      --gtest_filter=ShapeExec.*:FastPathTest.*:JitHotSwap.*
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "differential suites failed under SIMTVEC_JIT=${tier}:\n${out}${err}")
  endif()
endforeach()

# --- invalid values warn and fall back to auto ------------------------------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_JIT=bogus
    ${WALLCLOCK} ${OUT}.bogus 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run with invalid SIMTVEC_JIT exited with ${rc}")
endif()
if(NOT err MATCHES "ignoring invalid SIMTVEC_JIT='bogus'")
  message(FATAL_ERROR
    "invalid SIMTVEC_JIT did not produce the stderr warning:\n${err}")
endif()
