//===- tests/runtime_smoke_test.cpp - End-to-end launch smoke tests -------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

const char *VecAddSrc = R"(
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .reg .u32 %i, %n;
  .reg .u64 %off, %pa, %pb, %pc, %base_a, %base_b, %base_c;
  .reg .f32 %x, %y, %z;
  .reg .pred %p;

entry:
  mov.u32 %i, %tid.x;
  mov.u32 %n, %ntid.x;
  mul.u32 %n, %n, %ctaid.x;
  add.u32 %i, %i, %n;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base_a, [a];
  ld.param.u64 %base_b, [b];
  ld.param.u64 %base_c, [c];
  add.u64 %pa, %base_a, %off;
  add.u64 %pb, %base_b, %off;
  add.u64 %pc, %base_c, %off;
  ld.global.f32 %x, [%pa];
  ld.global.f32 %y, [%pb];
  add.f32 %z, %x, %y;
  st.global.f32 [%pc], %z;
  bra done;
done:
  ret;
}
)";

/// Launch vecadd under one configuration and validate every element.
void runVecAdd(const LaunchOptions &Options, uint32_t N) {
  Device Dev;
  auto ProgOrErr = Program::compile(VecAddSrc);
  ASSERT_TRUE(static_cast<bool>(ProgOrErr)) << ProgOrErr.status().message();
  auto &Prog = *ProgOrErr;

  std::vector<float> A(N), B(N);
  for (uint32_t I = 0; I < N; ++I) {
    A[I] = static_cast<float>(I) * 0.5f;
    B[I] = static_cast<float>(N - I);
  }
  uint64_t DA = Dev.allocArray<float>(N);
  uint64_t DB = Dev.allocArray<float>(N);
  uint64_t DC = Dev.allocArray<float>(N);
  Dev.upload(DA, A);
  Dev.upload(DB, B);

  ParamBuilder Params;
  Params.u64(DA).u64(DB).u64(DC).u32(N);

  Dim3 Block{64, 1, 1};
  Dim3 Grid{(N + 63) / 64, 1, 1};
  auto StatsOrErr = Prog->launch(Dev, "vecadd", Grid, Block, Params, Options);
  ASSERT_TRUE(static_cast<bool>(StatsOrErr))
      << StatsOrErr.status().message();

  std::vector<float> C = Dev.download<float>(DC, N);
  for (uint32_t I = 0; I < N; ++I)
    ASSERT_EQ(C[I], A[I] + B[I]) << "element " << I;

  EXPECT_GT(StatsOrErr->WarpEntries, 0u);
  EXPECT_GT(StatsOrErr->Counters.totalCycles(), 0.0);
}

TEST(RuntimeSmoke, VecAddScalar) {
  LaunchOptions Options;
  Options.MaxWarpSize = 1;
  runVecAdd(Options, 1000);
}

TEST(RuntimeSmoke, VecAddWarp4Dynamic) {
  LaunchOptions Options;
  Options.MaxWarpSize = 4;
  runVecAdd(Options, 1000);
}

TEST(RuntimeSmoke, VecAddWarp2Dynamic) {
  LaunchOptions Options;
  Options.MaxWarpSize = 2;
  runVecAdd(Options, 333);
}

TEST(RuntimeSmoke, VecAddStaticTie) {
  LaunchOptions Options;
  Options.MaxWarpSize = 4;
  Options.Formation = WarpFormation::Static;
  Options.ThreadInvariantElim = true;
  runVecAdd(Options, 1000);
}

TEST(RuntimeSmoke, VecAddSequentialWorkers) {
  LaunchOptions Options;
  Options.MaxWarpSize = 4;
  Options.UseOsThreads = false;
  runVecAdd(Options, 257);
}

//===----------------------------------------------------------------------===
// Typed parameter validation
//===----------------------------------------------------------------------===

TEST(TypedParams, TooFewParametersIsDescriptive) {
  Device Dev;
  auto Prog = Program::compile(VecAddSrc).take();
  Params P;
  P.u64(Dev.alloc(64));
  auto R = Prog->launch(Dev, "vecadd", {1, 1, 1}, {64, 1, 1}, P);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.status().message().find("expects 4 parameters"),
            std::string::npos)
      << R.status().message();
  EXPECT_NE(R.status().message().find("parameter bytes"), std::string::npos);
}

TEST(TypedParams, TypeMismatchIsDescriptive) {
  Device Dev;
  auto Prog = Program::compile(VecAddSrc).take();
  Params P; // 'a' is declared .u64; a .u32 is neither the size nor family
  P.u32(7).u64(Dev.alloc(64)).u64(Dev.alloc(64)).u32(4);
  auto R = Prog->launch(Dev, "vecadd", {1, 1, 1}, {64, 1, 1}, P);
  ASSERT_FALSE(static_cast<bool>(R));
  const std::string &Msg = R.status().message();
  EXPECT_NE(Msg.find("parameter 0 ('a')"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find(".u64"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find(".u32"), std::string::npos) << Msg;
}

TEST(TypedParams, SignednessIsInterchangeable) {
  // SVIR registers are bit patterns: .s32 satisfies a .u32 parameter.
  Device Dev;
  auto Prog = Program::compile(VecAddSrc).take();
  uint64_t DA = Dev.allocArray<float>(64), DB = Dev.allocArray<float>(64),
           DC = Dev.allocArray<float>(64);
  Params P;
  P.u64(DA).u64(DB).u64(DC).s32(64);
  auto R = Prog->launch(Dev, "vecadd", {1, 1, 1}, {64, 1, 1}, P);
  EXPECT_TRUE(static_cast<bool>(R)) << R.status().message();
}

TEST(TypedParams, TrailingConstantPayloadIsAllowed) {
  // The .param space doubles as constant memory: extra elements after the
  // declared signature (filter taps, atom tables) must pass validation.
  Device Dev;
  auto Prog = Program::compile(VecAddSrc).take();
  uint64_t DA = Dev.allocArray<float>(64), DB = Dev.allocArray<float>(64),
           DC = Dev.allocArray<float>(64);
  Params P;
  P.u64(DA).u64(DB).u64(DC).u32(64);
  for (int I = 0; I < 9; ++I)
    P.f32(static_cast<float>(I));
  auto R = Prog->launch(Dev, "vecadd", {1, 1, 1}, {64, 1, 1}, P);
  EXPECT_TRUE(static_cast<bool>(R)) << R.status().message();
}

TEST(TypedParams, BuilderSerializesNaturallyAlignedElements) {
  // The .param layout rule: each element lands at the next multiple of its
  // own size (natural alignment), so a u32 after a u64 packs at 8 and the
  // following s32 at 12, while the f64 skips up to 24.
  Params P;
  P.u64(1).u32(2).s32(-3).f32(4.0f).f64(5.0);
  ASSERT_EQ(P.elements().size(), 5u);
  EXPECT_EQ(P.elements()[0].Offset, 0u);
  EXPECT_EQ(P.elements()[1].Offset, 8u);
  EXPECT_EQ(P.elements()[2].Offset, 12u);
  EXPECT_EQ(P.elements()[3].Offset, 16u);
  EXPECT_EQ(P.elements()[4].Offset, 24u);
  EXPECT_EQ(P.bytes().size(), 32u);
  EXPECT_EQ(P.elements()[0].Ty, Type::u64());
  EXPECT_EQ(P.elements()[4].Ty, Type::f64());
}

//===----------------------------------------------------------------------===
// Checked device memory operations
//===----------------------------------------------------------------------===

TEST(DeviceChecked, AllocReportsArenaAccounting) {
  Device Dev(1024);
  auto R = Dev.tryAlloc(2048);
  ASSERT_FALSE(static_cast<bool>(R));
  const std::string &Msg = R.status().message();
  EXPECT_NE(Msg.find("out of memory"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("2048"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("1024-byte arena"), std::string::npos) << Msg;
  // The failed alloc must not move the break.
  auto Ok = Dev.tryAlloc(512);
  ASSERT_TRUE(static_cast<bool>(Ok));
  EXPECT_EQ(*Ok, 16u);
}

TEST(DeviceChecked, CopyAndMemsetBoundsDiagnostics) {
  Device Dev(1024);
  std::vector<std::byte> Host(64);

  Status E1 = Dev.tryCopyToDevice(1020, Host.data(), Host.size());
  ASSERT_TRUE(E1.isError());
  EXPECT_NE(E1.message().find("copyToDevice out of range"),
            std::string::npos);
  EXPECT_NE(E1.message().find("1020"), std::string::npos);
  EXPECT_NE(E1.message().find("1024-byte arena"), std::string::npos);

  Status E2 = Dev.tryCopyFromDevice(Host.data(), 2000, Host.size());
  ASSERT_TRUE(E2.isError());
  EXPECT_NE(E2.message().find("copyFromDevice out of range"),
            std::string::npos);

  Status E3 = Dev.tryMemset(1000, 0, 64);
  ASSERT_TRUE(E3.isError());
  EXPECT_NE(E3.message().find("memset out of range"), std::string::npos);

  // In-range forms succeed and are visible to the unchecked accessors.
  ASSERT_FALSE(Dev.tryMemset(16, 0x5a, 64).isError());
  EXPECT_EQ(Dev.data()[16], std::byte{0x5a});
}

TEST(RuntimeSmoke, InvalidWarpWidthIsRejectedWithValue) {
  // MaxWarpSize outside {1,2,4,8} must fail cleanly at launch with a Status
  // naming the offending value — never fall through to the vectorizer.
  Device Dev;
  auto Prog = Program::compile(VecAddSrc).take();
  uint64_t DA = Dev.allocArray<float>(64), DB = Dev.allocArray<float>(64),
           DC = Dev.allocArray<float>(64);
  Params P;
  P.u64(DA).u64(DB).u64(DC).u32(64);
  for (uint32_t W : {0u, 3u, 5u, 6u, 7u, 9u, 16u}) {
    LaunchOptions Options;
    Options.MaxWarpSize = W;
    auto R = Prog->launch(Dev, "vecadd", {1, 1, 1}, {64, 1, 1}, P, Options);
    ASSERT_FALSE(static_cast<bool>(R)) << "width " << W << " was accepted";
    const std::string &Msg = R.status().message();
    EXPECT_NE(Msg.find("power of two"), std::string::npos) << Msg;
    EXPECT_NE(Msg.find("got " + std::to_string(W)), std::string::npos) << Msg;
  }
  // Every valid width still launches.
  for (uint32_t W : {1u, 2u, 4u, 8u}) {
    LaunchOptions Options;
    Options.MaxWarpSize = W;
    auto R = Prog->launch(Dev, "vecadd", {1, 1, 1}, {64, 1, 1}, P, Options);
    EXPECT_TRUE(static_cast<bool>(R))
        << "width " << W << ": " << R.status().message();
  }
}

TEST(RuntimeSmoke, ModeledMetricsAreDeterministic) {
  // Two identical launches must produce bit-identical modeled results
  // regardless of host scheduling.
  auto RunOnce = [] {
    Device Dev;
    auto Prog = Program::compile(VecAddSrc).take();
    uint32_t N = 512;
    std::vector<float> A(N, 1.0f), B(N, 2.0f);
    uint64_t DA = Dev.allocArray<float>(N), DB = Dev.allocArray<float>(N),
             DC = Dev.allocArray<float>(N);
    Dev.upload(DA, A);
    Dev.upload(DB, B);
    ParamBuilder Params;
    Params.u64(DA).u64(DB).u64(DC).u32(N);
    return Prog->launch(Dev, "vecadd", {8, 1, 1}, {64, 1, 1}, Params).take();
  };
  LaunchStats S1 = RunOnce(), S2 = RunOnce();
  EXPECT_EQ(S1.Counters.totalCycles(), S2.Counters.totalCycles());
  EXPECT_EQ(S1.Counters.InstsExecuted, S2.Counters.InstsExecuted);
  EXPECT_EQ(S1.WarpEntries, S2.WarpEntries);
  EXPECT_EQ(S1.MaxWorkerCycles, S2.MaxWorkerCycles);
}

TEST(RuntimeSmoke, DeviceResetReclaimsArena) {
  // A long-running host that never frees would exhaust the bump allocator;
  // reset() returns the break to its initial position. Each iteration
  // allocates more than half the arena, so without the reset the second
  // iteration would already be out of memory.
  Device Dev(1 << 20);
  auto Prog = Program::compile(VecAddSrc).take();
  const uint32_t N = (1 << 20) / 3 / sizeof(float) - 16;
  std::vector<float> A(N, 1.0f), B(N, 2.0f);
  for (int Iter = 0; Iter < 8; ++Iter) {
    uint64_t DA = Dev.allocArray<float>(N), DB = Dev.allocArray<float>(N),
             DC = Dev.allocArray<float>(N);
    EXPECT_GT(Dev.used(), Dev.size() / 2);
    Dev.upload(DA, A);
    Dev.upload(DB, B);
    ParamBuilder P;
    P.u64(DA).u64(DB).u64(DC).u32(N);
    auto S = Prog->launch(Dev, "vecadd", {(N + 255) / 256}, {256}, P);
    ASSERT_TRUE(static_cast<bool>(S))
        << "iter " << Iter << ": " << S.status().message();
    auto C = Dev.download<float>(DC, N);
    EXPECT_EQ(C[N - 1], 3.0f) << "iter " << Iter;
    Dev.reset();
    EXPECT_EQ(Dev.used(), 16u); // only the reserved null-guard bytes
  }
}

TEST(RuntimeSmoke, OutOfMemoryDiagnosticCountsLiveAllocations) {
  Device Dev(1024);
  EXPECT_EQ(Dev.used(), 16u);
  ASSERT_TRUE(static_cast<bool>(Dev.tryAlloc(400)));
  ASSERT_TRUE(static_cast<bool>(Dev.tryAlloc(400)));
  auto R = Dev.tryAlloc(400);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.status().message().find("2 live allocations"),
            std::string::npos)
      << R.status().message();
  EXPECT_NE(R.status().message().find("Device::reset()"), std::string::npos);
  Dev.reset();
  EXPECT_TRUE(static_cast<bool>(Dev.tryAlloc(400)));
}

} // namespace
