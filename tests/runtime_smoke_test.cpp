//===- tests/runtime_smoke_test.cpp - End-to-end launch smoke tests -------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

const char *VecAddSrc = R"(
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .reg .u32 %i, %n;
  .reg .u64 %off, %pa, %pb, %pc, %base_a, %base_b, %base_c;
  .reg .f32 %x, %y, %z;
  .reg .pred %p;

entry:
  mov.u32 %i, %tid.x;
  mov.u32 %n, %ntid.x;
  mul.u32 %n, %n, %ctaid.x;
  add.u32 %i, %i, %n;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %base_a, [a];
  ld.param.u64 %base_b, [b];
  ld.param.u64 %base_c, [c];
  add.u64 %pa, %base_a, %off;
  add.u64 %pb, %base_b, %off;
  add.u64 %pc, %base_c, %off;
  ld.global.f32 %x, [%pa];
  ld.global.f32 %y, [%pb];
  add.f32 %z, %x, %y;
  st.global.f32 [%pc], %z;
  bra done;
done:
  ret;
}
)";

/// Launch vecadd under one configuration and validate every element.
void runVecAdd(const LaunchOptions &Options, uint32_t N) {
  Device Dev;
  auto ProgOrErr = Program::compile(VecAddSrc);
  ASSERT_TRUE(static_cast<bool>(ProgOrErr)) << ProgOrErr.status().message();
  auto &Prog = *ProgOrErr;

  std::vector<float> A(N), B(N);
  for (uint32_t I = 0; I < N; ++I) {
    A[I] = static_cast<float>(I) * 0.5f;
    B[I] = static_cast<float>(N - I);
  }
  uint64_t DA = Dev.allocArray<float>(N);
  uint64_t DB = Dev.allocArray<float>(N);
  uint64_t DC = Dev.allocArray<float>(N);
  Dev.upload(DA, A);
  Dev.upload(DB, B);

  ParamBuilder Params;
  Params.addU64(DA).addU64(DB).addU64(DC).addU32(N);

  Dim3 Block{64, 1, 1};
  Dim3 Grid{(N + 63) / 64, 1, 1};
  auto StatsOrErr = Prog->launch(Dev, "vecadd", Grid, Block, Params, Options);
  ASSERT_TRUE(static_cast<bool>(StatsOrErr))
      << StatsOrErr.status().message();

  std::vector<float> C = Dev.download<float>(DC, N);
  for (uint32_t I = 0; I < N; ++I)
    ASSERT_EQ(C[I], A[I] + B[I]) << "element " << I;

  EXPECT_GT(StatsOrErr->WarpEntries, 0u);
  EXPECT_GT(StatsOrErr->Counters.totalCycles(), 0.0);
}

TEST(RuntimeSmoke, VecAddScalar) {
  LaunchOptions Options;
  Options.MaxWarpSize = 1;
  runVecAdd(Options, 1000);
}

TEST(RuntimeSmoke, VecAddWarp4Dynamic) {
  LaunchOptions Options;
  Options.MaxWarpSize = 4;
  runVecAdd(Options, 1000);
}

TEST(RuntimeSmoke, VecAddWarp2Dynamic) {
  LaunchOptions Options;
  Options.MaxWarpSize = 2;
  runVecAdd(Options, 333);
}

TEST(RuntimeSmoke, VecAddStaticTie) {
  LaunchOptions Options;
  Options.MaxWarpSize = 4;
  Options.Formation = WarpFormation::Static;
  Options.ThreadInvariantElim = true;
  runVecAdd(Options, 1000);
}

TEST(RuntimeSmoke, VecAddSequentialWorkers) {
  LaunchOptions Options;
  Options.MaxWarpSize = 4;
  Options.UseOsThreads = false;
  runVecAdd(Options, 257);
}

TEST(RuntimeSmoke, ModeledMetricsAreDeterministic) {
  // Two identical launches must produce bit-identical modeled results
  // regardless of host scheduling.
  auto RunOnce = [] {
    Device Dev;
    auto Prog = Program::compile(VecAddSrc).take();
    uint32_t N = 512;
    std::vector<float> A(N, 1.0f), B(N, 2.0f);
    uint64_t DA = Dev.allocArray<float>(N), DB = Dev.allocArray<float>(N),
             DC = Dev.allocArray<float>(N);
    Dev.upload(DA, A);
    Dev.upload(DB, B);
    ParamBuilder Params;
    Params.addU64(DA).addU64(DB).addU64(DC).addU32(N);
    return Prog->launch(Dev, "vecadd", {8, 1, 1}, {64, 1, 1}, Params).take();
  };
  LaunchStats S1 = RunOnce(), S2 = RunOnce();
  EXPECT_EQ(S1.Counters.totalCycles(), S2.Counters.totalCycles());
  EXPECT_EQ(S1.Counters.InstsExecuted, S2.Counters.InstsExecuted);
  EXPECT_EQ(S1.WarpEntries, S2.WarpEntries);
  EXPECT_EQ(S1.MaxWorkerCycles, S2.MaxWorkerCycles);
}

} // namespace
