//===- tests/support_test.cpp - Support library unit tests ----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/BitSet.h"
#include "simtvec/support/Casting.h"
#include "simtvec/support/Format.h"
#include "simtvec/support/RNG.h"
#include "simtvec/support/Status.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

TEST(BitSetTest, SetResetTest) {
  BitSet S(130);
  EXPECT_EQ(S.size(), 130u);
  EXPECT_EQ(S.count(), 0u);
  S.set(0);
  S.set(64);
  S.set(129);
  EXPECT_TRUE(S.test(0));
  EXPECT_TRUE(S.test(64));
  EXPECT_TRUE(S.test(129));
  EXPECT_FALSE(S.test(1));
  EXPECT_EQ(S.count(), 3u);
  S.reset(64);
  EXPECT_FALSE(S.test(64));
  EXPECT_EQ(S.count(), 2u);
}

TEST(BitSetTest, UnionWith) {
  BitSet A(100), B(100);
  A.set(3);
  B.set(3);
  B.set(77);
  EXPECT_TRUE(A.unionWith(B));  // changed: bit 77 added
  EXPECT_FALSE(A.unionWith(B)); // no further change
  EXPECT_TRUE(A.test(77));
  EXPECT_EQ(A.count(), 2u);
}

TEST(BitSetTest, UnionWithMinus) {
  BitSet A(70), B(70), Kill(70);
  B.set(10);
  B.set(20);
  Kill.set(20);
  EXPECT_TRUE(A.unionWithMinus(B, Kill));
  EXPECT_TRUE(A.test(10));
  EXPECT_FALSE(A.test(20));
}

TEST(BitSetTest, ForEachAscending) {
  BitSet S(200);
  S.set(5);
  S.set(63);
  S.set(64);
  S.set(199);
  std::vector<size_t> Seen;
  S.forEach([&](size_t B) { Seen.push_back(B); });
  EXPECT_EQ(Seen, (std::vector<size_t>{5, 63, 64, 199}));
}

TEST(BitSetTest, Equality) {
  BitSet A(40), B(40);
  A.set(12);
  EXPECT_FALSE(A == B);
  B.set(12);
  EXPECT_TRUE(A == B);
}

TEST(FormatTest, BasicFormatting) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(formatString("%05u", 7u), "00007");
  EXPECT_EQ(formatString("plain"), "plain");
}

TEST(FormatTest, LongStrings) {
  std::string Long(5000, 'a');
  EXPECT_EQ(formatString("%s!", Long.c_str()).size(), 5001u);
}

TEST(StatusTest, SuccessAndError) {
  Status Ok = Status::success();
  EXPECT_FALSE(Ok.isError());
  Status Err = Status::error("boom");
  EXPECT_TRUE(Err.isError());
  EXPECT_EQ(Err.message(), "boom");
}

TEST(StatusTest, ExpectedValue) {
  Expected<int> V(7);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 7);
  EXPECT_EQ(V.take(), 7);
}

TEST(StatusTest, ExpectedError) {
  Expected<int> E(Status::error("nope"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.status().message(), "nope");
}

TEST(RNGTest, Deterministic) {
  RNG A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, FloatRanges) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    float F = R.nextFloat();
    EXPECT_GE(F, 0.0f);
    EXPECT_LT(F, 1.0f);
    float G = R.nextFloat(-3.0f, 5.0f);
    EXPECT_GE(G, -3.0f);
    EXPECT_LT(G, 5.0f);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNGTest, NextBelow) {
  RNG R(9);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

// LLVM-style casting over a tiny hierarchy.
struct Animal {
  enum class Kind { Cat, Dog } K;
  explicit Animal(Kind K) : K(K) {}
};
struct Cat : Animal {
  Cat() : Animal(Kind::Cat) {}
  static bool classof(const Animal *A) { return A->K == Kind::Cat; }
};
struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) { return A->K == Kind::Dog; }
};

TEST(CastingTest, IsaCastDynCast) {
  Cat C;
  Animal *A = &C;
  EXPECT_TRUE(isa<Cat>(A));
  EXPECT_FALSE(isa<Dog>(A));
  EXPECT_EQ(cast<Cat>(A), &C);
  EXPECT_EQ(dyn_cast<Dog>(A), nullptr);
  EXPECT_EQ(dyn_cast<Cat>(A), &C);
  const Animal *CA = &C;
  EXPECT_TRUE(isa<Cat>(CA));
  EXPECT_NE(cast<Cat>(CA), nullptr);
}

} // namespace
