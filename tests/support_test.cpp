//===- tests/support_test.cpp - Support library unit tests ----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/support/BitSet.h"
#include "simtvec/support/Casting.h"
#include "simtvec/support/Env.h"
#include "simtvec/support/Format.h"
#include "simtvec/support/RNG.h"
#include "simtvec/support/Status.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace simtvec;

namespace {

TEST(BitSetTest, SetResetTest) {
  BitSet S(130);
  EXPECT_EQ(S.size(), 130u);
  EXPECT_EQ(S.count(), 0u);
  S.set(0);
  S.set(64);
  S.set(129);
  EXPECT_TRUE(S.test(0));
  EXPECT_TRUE(S.test(64));
  EXPECT_TRUE(S.test(129));
  EXPECT_FALSE(S.test(1));
  EXPECT_EQ(S.count(), 3u);
  S.reset(64);
  EXPECT_FALSE(S.test(64));
  EXPECT_EQ(S.count(), 2u);
}

TEST(BitSetTest, UnionWith) {
  BitSet A(100), B(100);
  A.set(3);
  B.set(3);
  B.set(77);
  EXPECT_TRUE(A.unionWith(B));  // changed: bit 77 added
  EXPECT_FALSE(A.unionWith(B)); // no further change
  EXPECT_TRUE(A.test(77));
  EXPECT_EQ(A.count(), 2u);
}

TEST(BitSetTest, UnionWithMinus) {
  BitSet A(70), B(70), Kill(70);
  B.set(10);
  B.set(20);
  Kill.set(20);
  EXPECT_TRUE(A.unionWithMinus(B, Kill));
  EXPECT_TRUE(A.test(10));
  EXPECT_FALSE(A.test(20));
}

TEST(BitSetTest, ForEachAscending) {
  BitSet S(200);
  S.set(5);
  S.set(63);
  S.set(64);
  S.set(199);
  std::vector<size_t> Seen;
  S.forEach([&](size_t B) { Seen.push_back(B); });
  EXPECT_EQ(Seen, (std::vector<size_t>{5, 63, 64, 199}));
}

TEST(BitSetTest, Equality) {
  BitSet A(40), B(40);
  A.set(12);
  EXPECT_FALSE(A == B);
  B.set(12);
  EXPECT_TRUE(A == B);
}

TEST(FormatTest, BasicFormatting) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(formatString("%05u", 7u), "00007");
  EXPECT_EQ(formatString("plain"), "plain");
}

TEST(FormatTest, LongStrings) {
  std::string Long(5000, 'a');
  EXPECT_EQ(formatString("%s!", Long.c_str()).size(), 5001u);
}

TEST(StatusTest, SuccessAndError) {
  Status Ok = Status::success();
  EXPECT_FALSE(Ok.isError());
  Status Err = Status::error("boom");
  EXPECT_TRUE(Err.isError());
  EXPECT_EQ(Err.message(), "boom");
}

TEST(StatusTest, ExpectedValue) {
  Expected<int> V(7);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 7);
  EXPECT_EQ(V.take(), 7);
}

TEST(StatusTest, ExpectedError) {
  Expected<int> E(Status::error("nope"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.status().message(), "nope");
}

TEST(RNGTest, Deterministic) {
  RNG A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, FloatRanges) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    float F = R.nextFloat();
    EXPECT_GE(F, 0.0f);
    EXPECT_LT(F, 1.0f);
    float G = R.nextFloat(-3.0f, 5.0f);
    EXPECT_GE(G, -3.0f);
    EXPECT_LT(G, 5.0f);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNGTest, NextBelow) {
  RNG R(9);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

// LLVM-style casting over a tiny hierarchy.
struct Animal {
  enum class Kind { Cat, Dog } K;
  explicit Animal(Kind K) : K(K) {}
};
struct Cat : Animal {
  Cat() : Animal(Kind::Cat) {}
  static bool classof(const Animal *A) { return A->K == Kind::Cat; }
};
struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) { return A->K == Kind::Dog; }
};

/// Sets an environment variable for one test and restores the previous
/// value (or unset state) on destruction.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = getenv(Name))
      Saved = Old;
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~ScopedEnv() {
    if (Saved)
      setenv(Name, Saved->c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::optional<std::string> Saved;
};

// The knob under test here is a scratch name (no subsystem caches it), so
// each case sees exactly the value ScopedEnv set. The production knobs
// (SIMTVEC_JIT, SIMTVEC_SIMD, SIMTVEC_POOL_THREADS, SIMTVEC_TRACE*) all sit
// on these three parsers, so the valid/invalid/empty matrix below covers
// their shared behaviour: full-string validation, silent unset/empty, one
// warning-then-default for rejected values.
TEST(EnvKnobTest, IntKnobAcceptsFullStringInRange) {
  ScopedEnv E("SIMTVEC_TEST_KNOB", "8");
  auto V = env::intKnob("SIMTVEC_TEST_KNOB", 1, 1024, "the default");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 8);
  ScopedEnv E2("SIMTVEC_TEST_KNOB", "1024");
  EXPECT_EQ(env::intKnob("SIMTVEC_TEST_KNOB", 1, 1024, "the default"), 1024);
}

TEST(EnvKnobTest, IntKnobRejectsTrailingGarbage) {
  ScopedEnv E("SIMTVEC_TEST_KNOB", "8abc");
  EXPECT_FALSE(
      env::intKnob("SIMTVEC_TEST_KNOB", 1, 1024, "the default").has_value());
}

TEST(EnvKnobTest, IntKnobRejectsOutOfRange) {
  ScopedEnv Lo("SIMTVEC_TEST_KNOB", "0");
  EXPECT_FALSE(
      env::intKnob("SIMTVEC_TEST_KNOB", 1, 1024, "the default").has_value());
  ScopedEnv Hi("SIMTVEC_TEST_KNOB", "1025");
  EXPECT_FALSE(
      env::intKnob("SIMTVEC_TEST_KNOB", 1, 1024, "the default").has_value());
  ScopedEnv Huge("SIMTVEC_TEST_KNOB", "99999999999999999999999999");
  EXPECT_FALSE(
      env::intKnob("SIMTVEC_TEST_KNOB", 1, 1024, "the default").has_value());
}

TEST(EnvKnobTest, IntKnobSilentOnUnsetOrEmpty) {
  ScopedEnv Unset("SIMTVEC_TEST_KNOB", nullptr);
  EXPECT_FALSE(
      env::intKnob("SIMTVEC_TEST_KNOB", 1, 1024, "the default").has_value());
  ScopedEnv Empty("SIMTVEC_TEST_KNOB", "");
  EXPECT_FALSE(
      env::intKnob("SIMTVEC_TEST_KNOB", 1, 1024, "the default").has_value());
}

TEST(EnvKnobTest, ChoiceKnobMapsEachChoiceToItsIndex) {
  const std::vector<const char *> Choices = {"auto", "native", "interp"};
  for (size_t I = 0; I < Choices.size(); ++I) {
    ScopedEnv E("SIMTVEC_TEST_KNOB", Choices[I]);
    auto V = env::choiceKnob("SIMTVEC_TEST_KNOB", Choices, "auto");
    ASSERT_TRUE(V.has_value()) << Choices[I];
    EXPECT_EQ(*V, I);
  }
}

TEST(EnvKnobTest, ChoiceKnobRejectsUnknownAndPartialMatches) {
  const std::vector<const char *> Choices = {"auto", "native", "interp"};
  for (const char *Bad : {"bogus", "nativex", "nativ", "NATIVE"}) {
    ScopedEnv E("SIMTVEC_TEST_KNOB", Bad);
    EXPECT_FALSE(env::choiceKnob("SIMTVEC_TEST_KNOB", Choices, "auto")
                     .has_value())
        << Bad;
  }
}

TEST(EnvKnobTest, ChoiceKnobSilentOnUnsetOrEmpty) {
  const std::vector<const char *> Choices = {"auto", "vector", "scalar"};
  ScopedEnv Unset("SIMTVEC_TEST_KNOB", nullptr);
  EXPECT_FALSE(
      env::choiceKnob("SIMTVEC_TEST_KNOB", Choices, "auto").has_value());
  ScopedEnv Empty("SIMTVEC_TEST_KNOB", "");
  EXPECT_FALSE(
      env::choiceKnob("SIMTVEC_TEST_KNOB", Choices, "auto").has_value());
}

TEST(EnvKnobTest, BoolKnobTruthTable) {
  struct Case {
    const char *Value; // nullptr = unset
    bool Expected;
  } Cases[] = {{nullptr, false}, {"", false},    {"0", false},
               {"1", true},      {"yes", true},  {"00", true}};
  for (const Case &C : Cases) {
    ScopedEnv E("SIMTVEC_TEST_KNOB", C.Value);
    EXPECT_EQ(env::boolKnob("SIMTVEC_TEST_KNOB"), C.Expected)
        << (C.Value ? C.Value : "<unset>");
  }
}

TEST(CastingTest, IsaCastDynCast) {
  Cat C;
  Animal *A = &C;
  EXPECT_TRUE(isa<Cat>(A));
  EXPECT_FALSE(isa<Dog>(A));
  EXPECT_EQ(cast<Cat>(A), &C);
  EXPECT_EQ(dyn_cast<Dog>(A), nullptr);
  EXPECT_EQ(dyn_cast<Cat>(A), &C);
  const Animal *CA = &C;
  EXPECT_TRUE(isa<Cat>(CA));
  EXPECT_NE(cast<Cat>(CA), nullptr);
}

} // namespace
