//===- tests/property_test.cpp - Randomized equivalence properties --------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The paper's core claim (§4): "Execution of a single vectorized kernel is
/// computationally equivalent to the serial execution of a scalar version
/// of the kernel over a collection of threads." This property is checked
/// over randomly generated kernels: arbitrary arithmetic over u32/f32
/// register pools, data-dependent diamonds (divergence), data-dependent
/// loop trip counts (warp decay and re-formation at mixed phases), and
/// shared-memory exchanges across barriers. Every execution configuration
/// must produce bit-identical global memory to the scalar baseline.
///
//===----------------------------------------------------------------------===//

#include "simtvec/core/ExecutionManager.h"
#include "simtvec/ir/IRBuilder.h"
#include "simtvec/ir/Module.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/runtime/Runtime.h"
#include "simtvec/support/RNG.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace simtvec;

namespace {

/// Builds a random kernel into \p M and returns its name.
///
/// Shape: entry loads one u32 and one f32 per thread, seeds two register
/// pools, then emits a random sequence of segments:
///   - arithmetic runs over the pools,
///   - if/else diamonds on data-dependent predicates,
///   - bounded loops whose trip count is data-dependent (1..8),
///   - shared-memory neighbour exchanges across a barrier.
/// The epilogue stores one u32 and one f32 per thread.
class RandomKernelBuilder {
public:
  RandomKernelBuilder(Module &M, uint64_t Seed) : Rng(Seed) {
    K = &M.addKernel("random");
    build();
  }

private:
  static constexpr unsigned PoolSize = 4;

  Operand u32Imm() {
    return Operand::immInt(Type::u32(), static_cast<int64_t>(
                                            Rng.nextBelow(1000) + 1));
  }
  Operand f32Imm() { return Operand::immF32(Rng.nextFloat(-4.0f, 4.0f)); }

  RegId pickU() { return UPool[Rng.nextBelow(PoolSize)]; }
  RegId pickF() { return FPool[Rng.nextBelow(PoolSize)]; }

  void emitRandomOp(IRBuilder &B) {
    if (Rng.nextBool(0.5)) {
      // u32 op
      static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                   Opcode::Min, Opcode::Max, Opcode::And,
                                   Opcode::Or,  Opcode::Xor};
      Opcode Op = Ops[Rng.nextBelow(std::size(Ops))];
      Operand Src2 = Rng.nextBool(0.3) ? u32Imm() : Operand::reg(pickU());
      B.binary(Op, Type::u32(), pickU(), Operand::reg(pickU()), Src2);
      if (Rng.nextBool(0.2)) {
        // shift by a small immediate
        B.binary(Rng.nextBool(0.5) ? Opcode::Shl : Opcode::Shr, Type::u32(),
                 pickU(), Operand::reg(pickU()),
                 Operand::immInt(Type::u32(),
                                 static_cast<int64_t>(Rng.nextBelow(8))));
      }
    } else {
      // f32 op
      if (Rng.nextBool(0.25)) {
        B.mad(Type::f32(), pickF(), Operand::reg(pickF()),
              Operand::reg(pickF()), Operand::reg(pickF()));
      } else if (Rng.nextBool(0.15)) {
        RegId D = pickF();
        B.emit(Rng.nextBool(0.5) ? Opcode::Abs : Opcode::Neg, Type::f32(),
               D, {Operand::reg(pickF())});
      } else {
        static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                     Opcode::Min, Opcode::Max};
        Opcode Op = Ops[Rng.nextBelow(std::size(Ops))];
        Operand Src2 = Rng.nextBool(0.3) ? f32Imm() : Operand::reg(pickF());
        B.binary(Op, Type::f32(), pickF(), Operand::reg(pickF()), Src2);
      }
    }
  }

  void emitArithRun(IRBuilder &B, unsigned Count) {
    for (unsigned I = 0; I < Count; ++I)
      emitRandomOp(B);
  }

  /// if (u % k == r) { ops } else { ops }  — data-dependent divergence.
  void emitDiamond(IRBuilder &B) {
    unsigned Mod = static_cast<unsigned>(Rng.nextBelow(3)) + 2;
    RegId T = K->addReg(fresh("dt"), Type::u32());
    RegId P = K->addReg(fresh("dp"), Type::pred());
    B.binary(Opcode::Rem, Type::u32(), T, Operand::reg(pickU()),
             Operand::immInt(Type::u32(), Mod));
    B.setp(CmpOp::Eq, Type::u32(), P, Operand::reg(T),
           Operand::immInt(Type::u32(),
                           static_cast<int64_t>(Rng.nextBelow(Mod))));
    uint32_t Then = K->addBlock(fresh("then"));
    uint32_t Else = K->addBlock(fresh("else"));
    uint32_t Join = K->addBlock(fresh("join"));
    B.braCond(P, false, Then, Else);
    B.setBlock(Then);
    emitArithRun(B, 1 + static_cast<unsigned>(Rng.nextBelow(4)));
    B.bra(Join);
    B.setBlock(Else);
    emitArithRun(B, 1 + static_cast<unsigned>(Rng.nextBelow(4)));
    B.bra(Join);
    B.setBlock(Join);
  }

  /// for (i = 0; i < 1 + (u & 7); ++i) { ops [diamond] } — threads exit at
  /// different trip counts, decaying warps and re-merging mixed phases.
  void emitLoop(IRBuilder &B) {
    RegId I = K->addReg(fresh("li"), Type::u32());
    RegId N = K->addReg(fresh("ln"), Type::u32());
    RegId P = K->addReg(fresh("lp"), Type::pred());
    B.binary(Opcode::And, Type::u32(), N, Operand::reg(pickU()),
             Operand::immInt(Type::u32(), 7));
    B.add(Type::u32(), N, Operand::reg(N), Operand::immInt(Type::u32(), 1));
    B.mov(I, Operand::immInt(Type::u32(), 0));
    uint32_t Head = K->addBlock(fresh("head"));
    uint32_t Exit = K->addBlock(fresh("lexit"));
    B.bra(Head);
    B.setBlock(Head);
    emitArithRun(B, 1 + static_cast<unsigned>(Rng.nextBelow(3)));
    if (Rng.nextBool(0.5))
      emitDiamond(B);
    B.add(Type::u32(), I, Operand::reg(I), Operand::immInt(Type::u32(), 1));
    B.setp(CmpOp::Lt, Type::u32(), P, Operand::reg(I), Operand::reg(N));
    B.braCond(P, false, Head, Exit);
    B.setBlock(Exit);
  }

  /// Shared-memory neighbour exchange across a barrier (threads tid and
  /// tid^1 swap a u32).
  void emitExchange(IRBuilder &B) {
    RegId SA = K->addReg(fresh("sa"), Type::u64());
    RegId Peer = K->addReg(fresh("peer"), Type::u32());
    B.cvt(Type::u64(), SA, Operand::special(SReg::TidX));
    B.binary(Opcode::Shl, Type::u64(), SA, Operand::reg(SA),
             Operand::immInt(Type::u64(), 2));
    B.st(AddressSpace::Shared, Type::u32(), Operand::reg(SA),
         Operand::reg(pickU()));
    B.barSync();
    // bar must be block-terminal for the pipeline; BarrierSplit handles
    // splitting, so a plain append here is fine.
    B.binary(Opcode::Xor, Type::u32(), Peer, Operand::special(SReg::TidX),
             Operand::immInt(Type::u32(), 1));
    RegId PA = K->addReg(fresh("pa"), Type::u64());
    B.cvt(Type::u64(), PA, Operand::reg(Peer));
    B.binary(Opcode::Shl, Type::u64(), PA, Operand::reg(PA),
             Operand::immInt(Type::u64(), 2));
    B.ld(AddressSpace::Shared, Type::u32(), pickU(), Operand::reg(PA));
  }

  std::string fresh(const char *Hint) {
    return std::string(Hint) + std::to_string(Fresh++);
  }

  void build() {
    K->addParam("uin", Type::u64());
    K->addParam("fin", Type::u64());
    K->addParam("uout", Type::u64());
    K->addParam("fout", Type::u64());
    K->addSharedVar("exch", 4 * 64);

    for (unsigned I = 0; I < PoolSize; ++I)
      UPool[I] = K->addReg("u" + std::to_string(I), Type::u32());
    for (unsigned I = 0; I < PoolSize; ++I)
      FPool[I] = K->addReg("f" + std::to_string(I), Type::f32());
    RegId Gid = K->addReg("gid", Type::u32());
    RegId Off = K->addReg("off", Type::u64());
    RegId Addr = K->addReg("addr", Type::u64());
    RegId Base = K->addReg("base", Type::u64());

    uint32_t Entry = K->addBlock("entry");
    IRBuilder B(*K);
    B.setBlock(Entry);
    B.mov(Gid, Operand::special(SReg::TidX));
    {
      Instruction &I = B.emit(Opcode::Mad, Type::u32(), Gid,
                              {Operand::special(SReg::NTidX),
                               Operand::special(SReg::CTAIdX),
                               Operand::reg(Gid)});
      (void)I;
    }
    B.cvt(Type::u64(), Off, Operand::reg(Gid));
    B.binary(Opcode::Shl, Type::u64(), Off, Operand::reg(Off),
             Operand::immInt(Type::u64(), 2));

    // Seed the pools.
    B.ld(AddressSpace::Param, Type::u64(), Base,
         Operand::symbol(SymKind::Param, 0));
    B.add(Type::u64(), Addr, Operand::reg(Base), Operand::reg(Off));
    B.ld(AddressSpace::Global, Type::u32(), UPool[0], Operand::reg(Addr));
    B.ld(AddressSpace::Param, Type::u64(), Base,
         Operand::symbol(SymKind::Param, 1));
    B.add(Type::u64(), Addr, Operand::reg(Base), Operand::reg(Off));
    B.ld(AddressSpace::Global, Type::f32(), FPool[0], Operand::reg(Addr));
    B.mov(UPool[1], Operand::reg(Gid));
    B.binary(Opcode::Xor, Type::u32(), UPool[2], Operand::reg(UPool[0]),
             Operand::immInt(Type::u32(), 0x5a5a));
    B.mov(UPool[3], Operand::immInt(Type::u32(), 7));
    B.cvt(Type::f32(), FPool[1], Operand::reg(Gid));
    B.binary(Opcode::Mul, Type::f32(), FPool[2], Operand::reg(FPool[0]),
             Operand::immF32(0.5f));
    B.mov(FPool[3], Operand::immF32(1.25f));

    // Random segments.
    unsigned Segments = 2 + static_cast<unsigned>(Rng.nextBelow(4));
    for (unsigned S = 0; S < Segments; ++S) {
      emitArithRun(B, 1 + static_cast<unsigned>(Rng.nextBelow(5)));
      double Roll = Rng.nextDouble();
      if (Roll < 0.4)
        emitDiamond(B);
      else if (Roll < 0.65)
        emitLoop(B);
      else if (Roll < 0.8)
        emitExchange(B);
    }

    // Epilogue: store one value of each kind.
    B.ld(AddressSpace::Param, Type::u64(), Base,
         Operand::symbol(SymKind::Param, 2));
    B.add(Type::u64(), Addr, Operand::reg(Base), Operand::reg(Off));
    B.st(AddressSpace::Global, Type::u32(), Operand::reg(Addr),
         Operand::reg(pickU()));
    B.ld(AddressSpace::Param, Type::u64(), Base,
         Operand::symbol(SymKind::Param, 3));
    B.add(Type::u64(), Addr, Operand::reg(Base), Operand::reg(Off));
    B.st(AddressSpace::Global, Type::f32(), Operand::reg(Addr),
         Operand::reg(pickF()));
    B.ret();
  }

  RNG Rng;
  Kernel *K = nullptr;
  RegId UPool[PoolSize];
  RegId FPool[PoolSize];
  unsigned Fresh = 0;
};

/// Runs the random kernel under \p Config; returns the two output arrays.
struct RunOutput {
  std::vector<uint32_t> U;
  std::vector<uint32_t> FBits;
};

RunOutput runUnder(const Module &M, const LaunchConfig &Config,
                   uint64_t DataSeed, uint32_t Threads) {
  // A forced-native launch needs a SpecializationService behind the cache
  // (it owns the background/synchronous JIT); keep it non-persistent and
  // attach it only when the config asks for the native tier, so the other
  // differential configs measure exactly the engines they always did. The
  // service must outlive the cache.
  SpecializationService Svc(M, Config.Machine, SpecializationOptions{});
  TranslationCache TC(M, Config.Machine);
  if (Config.Jit == JitMode::Native)
    TC.setSpecializationService(&Svc);
  std::vector<std::byte> Global(1 << 20);
  AtomicStripes Atomics;

  RNG Data(DataSeed);
  std::vector<uint32_t> UIn(Threads);
  std::vector<float> FIn(Threads);
  for (uint32_t I = 0; I < Threads; ++I) {
    UIn[I] = static_cast<uint32_t>(Data.next());
    FIn[I] = Data.nextFloat(-8.0f, 8.0f);
  }
  uint64_t AU = 64, AF = AU + Threads * 4, OU = AF + Threads * 4,
           OF = OU + Threads * 4;
  std::memcpy(Global.data() + AU, UIn.data(), Threads * 4);
  std::memcpy(Global.data() + AF, FIn.data(), Threads * 4);

  ParamBuilder Params;
  Params.u64(AU).u64(AF).u64(OU).u64(OF);

  Dim3 Grid{Threads / 64, 1, 1};
  Dim3 Block{64, 1, 1};
  auto S = launchKernel(TC, "random", Grid, Block, Params.bytes(),
                        Global.data(), Global.size(), Atomics, Config);
  EXPECT_TRUE(static_cast<bool>(S)) << S.status().message();

  RunOutput Out;
  Out.U.resize(Threads);
  Out.FBits.resize(Threads);
  std::memcpy(Out.U.data(), Global.data() + OU, Threads * 4);
  std::memcpy(Out.FBits.data(), Global.data() + OF, Threads * 4);
  return Out;
}

class RandomKernelEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomKernelEquivalence, AllConfigsMatchScalar) {
  uint64_t Seed = GetParam();
  Module M;
  RandomKernelBuilder Builder(M, Seed);
  ASSERT_FALSE(verifyModule(M).isError()) << verifyModule(M).message();

  const uint32_t Threads = 128;
  LaunchConfig Scalar;
  Scalar.MaxWarpSize = 1;
  Scalar.UseOsThreads = false;
  RunOutput Ref = runUnder(M, Scalar, Seed * 33 + 1, Threads);

  struct Cfg {
    const char *Name;
    uint32_t WS;
    WarpFormation Formation;
    bool Tie, Ubo, Ulo;
  };
  const Cfg Cfgs[] = {
      {"dyn2", 2, WarpFormation::Dynamic, false, false, false},
      {"dyn4", 4, WarpFormation::Dynamic, false, false, false},
      {"dyn8", 8, WarpFormation::Dynamic, false, false, false},
      {"static4", 4, WarpFormation::Static, false, false, false},
      {"tie4", 4, WarpFormation::Static, true, false, false},
      {"ubo4", 4, WarpFormation::Dynamic, false, true, false},
      {"ulo4", 4, WarpFormation::Dynamic, false, false, true},
      {"all4", 4, WarpFormation::Static, true, true, true},
  };
  for (const Cfg &C : Cfgs) {
    LaunchConfig Config;
    Config.MaxWarpSize = C.WS;
    Config.Formation = C.Formation;
    Config.ThreadInvariantElim = C.Tie;
    Config.UniformBranchOpt = C.Ubo;
    Config.UniformLoadOpt = C.Ulo;
    Config.UseOsThreads = false;
    RunOutput Got = runUnder(M, Config, Seed * 33 + 1, Threads);
    EXPECT_EQ(Got.U, Ref.U) << "u32 outputs differ under " << C.Name
                            << " (seed " << Seed << ")";
    EXPECT_EQ(Got.FBits, Ref.FBits)
        << "f32 outputs differ under " << C.Name << " (seed " << Seed
        << ")";

    // Differential across execution engines at the same configuration: the
    // fused/specialized decoded engine above, the decoded engine with
    // superinstruction fusion off, and the IR-walking reference engine must
    // all agree bit-for-bit.
    LaunchConfig Plain = Config;
    Plain.Superinstructions = false;
    RunOutput GotPlain = runUnder(M, Plain, Seed * 33 + 1, Threads);
    EXPECT_EQ(GotPlain.U, Got.U) << "unfused u32 outputs differ under "
                                 << C.Name << " (seed " << Seed << ")";
    EXPECT_EQ(GotPlain.FBits, Got.FBits)
        << "unfused f32 outputs differ under " << C.Name << " (seed " << Seed
        << ")";
    LaunchConfig RefEngine = Config;
    RefEngine.UseReferenceInterp = true;
    RunOutput GotRef = runUnder(M, RefEngine, Seed * 33 + 1, Threads);
    EXPECT_EQ(GotRef.U, Got.U) << "reference-engine u32 outputs differ under "
                               << C.Name << " (seed " << Seed << ")";
    EXPECT_EQ(GotRef.FBits, Got.FBits)
        << "reference-engine f32 outputs differ under " << C.Name << " (seed "
        << Seed << ")";

    // Divergence-reduction differential: the forced-meld and forced-
    // predicate branch plans rewrite the scalar program (flattened
    // diamonds, melded half-regions, masked self-loops) but must leave
    // outputs bit-identical to the legacy yield plan on every random
    // kernel — illegal sites clamp back to yield rather than miscompile.
    for (const char *PlanStr : {"m", "p"}) {
      LaunchConfig Melded = Config;
      Melded.BranchPlan = PlanStr;
      RunOutput GotMeld = runUnder(M, Melded, Seed * 33 + 1, Threads);
      EXPECT_EQ(GotMeld.U, Got.U)
          << "branch-plan '" << PlanStr << "' u32 outputs differ under "
          << C.Name << " (seed " << Seed << ")";
      EXPECT_EQ(GotMeld.FBits, Got.FBits)
          << "branch-plan '" << PlanStr << "' f32 outputs differ under "
          << C.Name << " (seed " << Seed << ")";
    }

    // Forced-vector vs forced-scalar lane kernels at the same configuration:
    // the SIMD fast path and its scalar-loop oracle must be bit-identical on
    // every random kernel, including the ops the vector branch hands back to
    // inline scalar loops (div/rem guards, libm unaries, saturating cvt).
    LaunchConfig VecPath = Config;
    VecPath.Simd = SimdMode::Vector;
    RunOutput GotVec = runUnder(M, VecPath, Seed * 33 + 1, Threads);
    LaunchConfig ScaPath = Config;
    ScaPath.Simd = SimdMode::Scalar;
    RunOutput GotSca = runUnder(M, ScaPath, Seed * 33 + 1, Threads);
    EXPECT_EQ(GotVec.U, GotSca.U)
        << "simd-vector u32 outputs differ from simd-scalar under " << C.Name
        << " (seed " << Seed << ")";
    EXPECT_EQ(GotVec.FBits, GotSca.FBits)
        << "simd-vector f32 outputs differ from simd-scalar under " << C.Name
        << " (seed " << Seed << ")";
    EXPECT_EQ(GotSca.U, Got.U) << "simd-scalar u32 outputs differ under "
                               << C.Name << " (seed " << Seed << ")";
    EXPECT_EQ(GotSca.FBits, Got.FBits)
        << "simd-scalar f32 outputs differ under " << C.Name << " (seed "
        << Seed << ")";
  }

  // Forced-native vs forced-interpreter tier on the same random kernel:
  // the dlopen'd code the JIT emits must be bit-identical to the
  // interpreter on outputs. Without a host toolchain (or when codegen
  // refuses the kernel) the forced-native launch degrades silently to the
  // interpreter, leaving the comparison trivially true — tests/jit_check
  // is the job that insists the native tier actually engaged.
  LaunchConfig NativeTier;
  NativeTier.MaxWarpSize = 4;
  NativeTier.UseOsThreads = false;
  NativeTier.Jit = JitMode::Native;
  RunOutput GotNative = runUnder(M, NativeTier, Seed * 33 + 1, Threads);
  LaunchConfig InterpTier = NativeTier;
  InterpTier.Jit = JitMode::Interp;
  RunOutput GotInterp = runUnder(M, InterpTier, Seed * 33 + 1, Threads);
  EXPECT_EQ(GotNative.U, GotInterp.U)
      << "native-tier u32 outputs differ from interpreter (seed " << Seed
      << ")";
  EXPECT_EQ(GotNative.FBits, GotInterp.FBits)
      << "native-tier f32 outputs differ from interpreter (seed " << Seed
      << ")";
  EXPECT_EQ(GotInterp.U, Ref.U)
      << "forced-interp u32 outputs differ from scalar baseline (seed "
      << Seed << ")";
  EXPECT_EQ(GotInterp.FBits, Ref.FBits)
      << "forced-interp f32 outputs differ from scalar baseline (seed "
      << Seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomKernelEquivalence,
                         ::testing::Range<uint64_t>(1, 33));


//===----------------------------------------------------------------------===
// Divergence-probability sweep: correctness at every divergence rate
//===----------------------------------------------------------------------===

/// The divergence_explorer kernel: a data-dependent heavy/light branch per
/// round whose taken-probability is a launch parameter. Sweeping it pushes
/// the execution manager through every regime — fully convergent, mixed,
/// and fully divergent — while the u32 outputs stay bit-checkable.
class DivergenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(DivergenceSweep, VectorMatchesScalarAtEveryRate) {
  const char *Src = R"(
.kernel diverge (.param .u64 seeds, .param .u64 out, .param .u32 rounds,
                 .param .u32 threshold)
{
  .reg .u32 %gid, %state, %acc, %i, %nr, %np, %thr, %draw;
  .reg .u64 %addr, %base, %off;
  .reg .pred %pheavy, %p;
entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %np, [rounds];
  mov.u32 %nr, %np;
  ld.param.u32 %np, [threshold];
  mov.u32 %thr, %np;
  ld.param.u64 %base, [seeds];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  ld.global.u32 %state, [%addr];
  mov.u32 %acc, 0;
  mov.u32 %i, 0;
  bra loop;
loop:
  mul.u32 %state, %state, 1664525;
  add.u32 %state, %state, 1013904223;
  shr.u32 %draw, %state, 16;
  and.u32 %draw, %draw, 0xFFFF;
  setp.lt.u32 %pheavy, %draw, %thr;
  @%pheavy bra heavy, light;
heavy:
  xor.u32 %acc, %acc, %state;
  shl.u32 %draw, %acc, 3;
  add.u32 %acc, %acc, %draw;
  bra join;
light:
  add.u32 %acc, %acc, %state;
  bra join;
join:
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %nr;
  @%p bra loop, store;
store:
  ld.param.u64 %base, [out];
  add.u64 %addr, %base, %off;
  st.global.u32 [%addr], %acc;
  ret;
}
)";
  const int Percent = GetParam();
  const uint32_t Threads = 256, Rounds = 16;
  uint32_t Threshold = static_cast<uint32_t>(65536.0 * Percent / 100.0);

  auto Prog = Program::compile(Src).take();
  auto RunConfig = [&](const LaunchOptions &Options) {
    Device Dev(1 << 16);
    RNG Rng(991);
    std::vector<uint32_t> Seeds(Threads);
    for (auto &S : Seeds)
      S = static_cast<uint32_t>(Rng.next());
    uint64_t DSeeds = Dev.allocArray<uint32_t>(Threads);
    uint64_t DOut = Dev.allocArray<uint32_t>(Threads);
    Dev.upload(DSeeds, Seeds);
    ParamBuilder Params;
    Params.u64(DSeeds).u64(DOut).u32(Rounds).u32(Threshold);
    auto S = Prog->launch(Dev, "diverge", {Threads / 64, 1, 1}, {64, 1, 1},
                          Params, Options);
    EXPECT_TRUE(static_cast<bool>(S)) << S.status().message();
    return Dev.download<uint32_t>(DOut, Threads);
  };

  LaunchOptions Scalar;
  Scalar.MaxWarpSize = 1;
  auto Ref = RunConfig(Scalar);
  for (uint32_t WS : {2u, 4u}) {
    LaunchOptions O;
    O.MaxWarpSize = WS;
    EXPECT_EQ(RunConfig(O), Ref) << "ws" << WS << " @ " << Percent << "%";
  }
  LaunchOptions StaticTie;
  StaticTie.MaxWarpSize = 4;
  StaticTie.Formation = WarpFormation::Static;
  StaticTie.ThreadInvariantElim = true;
  EXPECT_EQ(RunConfig(StaticTie), Ref) << "tie @ " << Percent << "%";
  LaunchOptions ScalarSimd;
  ScalarSimd.MaxWarpSize = 4;
  ScalarSimd.Simd = SimdMode::Scalar;
  EXPECT_EQ(RunConfig(ScalarSimd), Ref)
      << "simd-scalar @ " << Percent << "%";
}

INSTANTIATE_TEST_SUITE_P(Sweep, DivergenceSweep,
                         ::testing::Values(0, 5, 10, 25, 50, 75, 90, 100));

} // namespace
