//===- tests/meld_test.cpp - Divergence-reduction tests -------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The PR-9 divergence-reduction stack, bottom to top: ControlFlowMeld
/// structural unit tests (flattening, DARM-style melding, masked self-
/// loops, legality clamping), trap-safety regressions for predicated
/// execution (guarded division and loads must stay guarded through every
/// policy), end-to-end workload differentials (all branch policies x warp
/// widths x execution tiers must validate bit-exactly against the golden
/// references, and melding must actually remove divergence yields), and
/// the divergence-PGO explore/commit protocol.
///
//===----------------------------------------------------------------------===//

#include "simtvec/core/SpecializationService.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/runtime/Runtime.h"
#include "simtvec/transforms/Passes.h"
#include "simtvec/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

Kernel &parseK(std::unique_ptr<Module> &Keep, const std::string &Src) {
  Keep = parseModuleOrDie(Src);
  return *Keep->kernels().front();
}

size_t countOpcode(const Kernel &K, Opcode Op) {
  size_t N = 0;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      N += I.Op == Op;
  return N;
}

size_t countGuardedBranches(const Kernel &K) {
  size_t N = 0;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      N += I.Op == Opcode::Bra && I.Guard.isValid();
  return N;
}

//===----------------------------------------------------------------------===
// ControlFlowMeld structure
//===----------------------------------------------------------------------===

const char *DiamondSrc = R"(
.kernel k (.param .u64 out)
{
  .reg .u32 %t, %v, %w;
  .reg .u64 %a, %off;
  .reg .pred %p;
entry:
  mov.u32 %t, %tid.x;
  setp.eq.u32 %p, %t, 0;
  mov.u32 %v, 7;
  @%p bra then, else;
then:
  mul.u32 %w, %v, 2;
  bra join;
else:
  mul.u32 %w, %v, 3;
  bra join;
join:
  ld.param.u64 %a, [out];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %w;
  ret;
}
)";

TEST(MeldTransform, EmptyPlanOnlyNumbersSites) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, DiamondSrc);
  size_t BlocksBefore = K.Blocks.size();
  MeldResult R = runControlFlowMeld(K, "");
  EXPECT_EQ(R.NumSites, 1u);
  EXPECT_EQ(R.EffectivePlan, "y");
  EXPECT_EQ(K.Blocks.size(), BlocksBefore);
  EXPECT_EQ(countGuardedBranches(K), 1u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(MeldTransform, DiamondFlattensUnderPredicatePlan) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, DiamondSrc);
  MeldResult R = runControlFlowMeld(K, "p");
  EXPECT_EQ(R.EffectivePlan, "p");
  EXPECT_EQ(countGuardedBranches(K), 0u);
  // Both arm multiplies survive, guarded by the materialized activation
  // predicates (predication without melding duplicates the arm bodies).
  EXPECT_EQ(countOpcode(K, Opcode::Mul), 2u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(MeldTransform, DiamondMeldsStructurallySimilarArms) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, DiamondSrc);
  MeldResult R = runControlFlowMeld(K, "m");
  EXPECT_EQ(R.EffectivePlan, "m");
  EXPECT_EQ(countGuardedBranches(K), 0u);
  // DARM alignment: the two `mul`s differ only in an immediate operand, so
  // they meld into ONE unguarded multiply fed by an operand select.
  EXPECT_EQ(countOpcode(K, Opcode::Mul), 1u);
  EXPECT_GE(countOpcode(K, Opcode::Selp), 1u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(MeldTransform, TriangleFlattens) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 out)
{
  .reg .u32 %t, %v;
  .reg .u64 %a, %off;
  .reg .pred %p;
entry:
  mov.u32 %t, %tid.x;
  mov.u32 %v, 1;
  setp.eq.u32 %p, %t, 0;
  @%p bra take, join;
take:
  add.u32 %v, %v, 41;
  bra join;
join:
  ld.param.u64 %a, [out];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %v;
  ret;
}
)");
  MeldResult R = runControlFlowMeld(K, "m");
  EXPECT_EQ(R.EffectivePlan, "m");
  EXPECT_EQ(countGuardedBranches(K), 0u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(MeldTransform, SelfLoopBecomesMaskedBackedge) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 out)
{
  .reg .u32 %t, %i, %acc, %n;
  .reg .u64 %a, %off;
  .reg .pred %p;
entry:
  mov.u32 %t, %tid.x;
  add.u32 %n, %t, 1;
  mov.u32 %i, 0;
  mov.u32 %acc, 0;
  bra loop;
loop:
  add.u32 %acc, %acc, %i;
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %n;
  @%p bra loop, store;
store:
  ld.param.u64 %a, [out];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %acc;
  ret;
}
)");
  MeldResult R = runControlFlowMeld(K, "m");
  EXPECT_EQ(R.EffectivePlan, "m");
  // The self-loop survives as a guarded backedge, but flagged masked: the
  // vectorizer keeps the warp looping while any lane is live instead of
  // yielding on every divergent iteration.
  EXPECT_EQ(R.MaskedBlocks.size(), 1u);
  EXPECT_EQ(countGuardedBranches(K), 1u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(MeldTransform, LoopWithInnerDiamondCollapsesToMaskedLoop) {
  // The BFS/SpMV shape: a variable-trip loop whose body contains a
  // diamond. The diamond must flatten, the tail block must fuse back into
  // the loop head (the flattened arms may not keep contributing stale
  // predecessor edges), and the resulting self-loop must mask.
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 out)
{
  .reg .u32 %t, %i, %acc, %n, %par, %w;
  .reg .u64 %a, %off;
  .reg .pred %p, %pc;
entry:
  mov.u32 %t, %tid.x;
  add.u32 %n, %t, 1;
  mov.u32 %i, 0;
  mov.u32 %acc, 0;
  bra loop;
loop:
  and.u32 %par, %i, 1;
  setp.eq.u32 %pc, %par, 0;
  @%pc bra even, odd;
even:
  mul.u32 %w, %i, 2;
  bra next;
odd:
  mul.u32 %w, %i, 3;
  bra next;
next:
  add.u32 %acc, %acc, %w;
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %n;
  @%p bra loop, store;
store:
  ld.param.u64 %a, [out];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %acc;
  ret;
}
)");
  MeldResult R = runControlFlowMeld(K, "m");
  ASSERT_EQ(R.NumSites, 2u);
  EXPECT_EQ(R.EffectivePlan, "mm");
  // Exactly the masked backedge remains; the diamond is gone.
  EXPECT_EQ(R.MaskedBlocks.size(), 1u);
  EXPECT_EQ(countGuardedBranches(K), 1u);
  // The two arm multiplies melded into one.
  EXPECT_EQ(countOpcode(K, Opcode::Mul), 1u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(MeldTransform, BarrierArmsClampToYield) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 out)
{
  .reg .u32 %t, %v;
  .reg .pred %p;
entry:
  mov.u32 %t, %tid.x;
  setp.eq.u32 %p, %t, 0;
  @%p bra then, join;
then:
  bar.sync;
  bra join;
join:
  ret;
}
)");
  size_t BlocksBefore = K.Blocks.size();
  MeldResult R = runControlFlowMeld(K, "m");
  // A guarded bar.sync would deadlock the unguarded lanes: the site clamps
  // back to yield and the region is untouched.
  EXPECT_EQ(R.EffectivePlan, "y");
  EXPECT_EQ(K.Blocks.size(), BlocksBefore);
  EXPECT_EQ(countGuardedBranches(K), 1u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(MeldTransform, AtomicArmsFlattenGuardedButNeverMeld) {
  // Guarded atomics are a supported engine construct (inactive lanes skip
  // them), so an atomic arm may flatten — but two atomics must never meld
  // into one op, whatever their structural similarity: the lane-activity
  // sets differ and a single melded atomic would double-count.
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 out)
{
  .reg .u32 %t, %old;
  .reg .u64 %a;
  .reg .pred %p;
entry:
  mov.u32 %t, %tid.x;
  setp.eq.u32 %p, %t, 0;
  ld.param.u64 %a, [out];
  @%p bra then, else;
then:
  atom.global.add.u32 %old, [%a], 1;
  bra join;
else:
  atom.global.add.u32 %old, [%a], 2;
  bra join;
join:
  ret;
}
)");
  MeldResult R = runControlFlowMeld(K, "m");
  EXPECT_EQ(R.EffectivePlan, "m");
  EXPECT_EQ(countGuardedBranches(K), 0u);
  size_t Atomics = 0, GuardedAtomics = 0;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::AtomAdd) {
        ++Atomics;
        GuardedAtomics += I.Guard.isValid();
      }
  EXPECT_EQ(Atomics, 2u);
  EXPECT_EQ(GuardedAtomics, 2u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(MeldTransform, InvalidPlanCharactersClampToYield) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, DiamondSrc);
  MeldResult R = runControlFlowMeld(K, "z");
  EXPECT_EQ(R.EffectivePlan, "y");
  EXPECT_EQ(countGuardedBranches(K), 1u);
}

//===----------------------------------------------------------------------===
// Trap safety under predication (the PredicateToSelect bugfix)
//===----------------------------------------------------------------------===

/// out[i] = d != 0 ? n / d : 0xdead, where d is zero for odd threads. Under
/// the predicate/meld plans the division executes in a flattened region; if
/// any pass strips its guard (the historical PredicateToSelect bug turned
/// guarded instructions into unguarded op + select), the odd lanes divide
/// by zero — a SIGFPE in the native tier.
const char *GuardedDivSrc = R"(
.kernel gdiv (.param .u64 out, .param .u32 n)
{
  .reg .u32 %t, %nv, %d, %q;
  .reg .u64 %a, %off;
  .reg .pred %p;
entry:
  mov.u32 %t, %tid.x;
  mad.u32 %t, %ntid.x, %ctaid.x, %t;
  ld.param.u32 %nv, [n];
  and.u32 %d, %t, 1;
  setp.eq.u32 %p, %d, 0;
  mov.u32 %q, 57005;
  @%p bra divide, store;
divide:
  add.u32 %d, %t, 2;
  div.u32 %q, %nv, %d;
  bra store;
store:
  ld.param.u64 %a, [out];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %q;
  ret;
}
)";

class MeldGuard : public ::testing::TestWithParam<BranchMode> {};

TEST_P(MeldGuard, GuardedDivisionByZeroNeverTraps) {
  auto ProgOrErr = Program::compile(GuardedDivSrc);
  ASSERT_TRUE(static_cast<bool>(ProgOrErr)) << ProgOrErr.status().message();
  const uint32_t N = 128;
  Device Dev(1 << 16);
  uint64_t Out = Dev.allocArray<uint32_t>(N);
  ParamBuilder Params;
  Params.u64(Out).u32(N);
  LaunchOptions O;
  O.MaxWarpSize = 4;
  O.Branch = GetParam();
  auto S = (*ProgOrErr)->launch(Dev, "gdiv", {2, 1, 1}, {64, 1, 1}, Params, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  std::vector<uint32_t> Got = Dev.download<uint32_t>(Out, N);
  for (uint32_t T = 0; T < N; ++T) {
    uint32_t Want = (T & 1u) ? 57005u : N / (T + 2);
    ASSERT_EQ(Got[T], Want) << "thread " << T;
  }
}

TEST_P(MeldGuard, GuardedOutOfBoundsLoadNeverFires) {
  // out[i] = i < 4 ? a[i] : 7. The else lanes' load index is 2^29 words —
  // far past the device arena, so an unguarded load faults the launch.
  const char *Src = R"(
.kernel gld (.param .u64 in, .param .u64 out)
{
  .reg .u32 %t, %v, %idx;
  .reg .u64 %a, %off;
  .reg .pred %p;
entry:
  mov.u32 %t, %tid.x;
  setp.lt.u32 %p, %t, 4;
  mov.u32 %v, 7;
  mov.u32 %idx, 536870912;
  @%p bra inb, store;
inb:
  ld.param.u64 %a, [in];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  ld.global.u32 %v, [%a];
  bra store;
store:
  ld.param.u64 %a, [out];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %v;
  ret;
}
)";
  auto ProgOrErr = Program::compile(Src);
  ASSERT_TRUE(static_cast<bool>(ProgOrErr)) << ProgOrErr.status().message();
  const uint32_t N = 32;
  Device Dev(1 << 12);
  uint64_t In = Dev.allocArray<uint32_t>(N);
  uint64_t Out = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> Input(N);
  for (uint32_t I = 0; I < N; ++I)
    Input[I] = 1000 + I;
  Dev.upload(In, Input);
  ParamBuilder Params;
  Params.u64(In).u64(Out);
  LaunchOptions O;
  O.MaxWarpSize = 4;
  O.Branch = GetParam();
  auto S =
      (*ProgOrErr)->launch(Dev, "gld", {1, 1, 1}, {N, 1, 1}, Params, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  std::vector<uint32_t> Got = Dev.download<uint32_t>(Out, N);
  for (uint32_t T = 0; T < N; ++T)
    ASSERT_EQ(Got[T], T < 4 ? 1000 + T : 7u) << "thread " << T;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MeldGuard,
                         ::testing::Values(BranchMode::Yield,
                                           BranchMode::Predicate,
                                           BranchMode::Meld),
                         [](const auto &Info) {
                           return std::string(branchModeName(Info.param));
                         });

//===----------------------------------------------------------------------===
// Workload differential: policies x widths x tiers
//===----------------------------------------------------------------------===

struct DiffCase {
  const char *WorkloadName;
  uint32_t Width;
  BranchMode Branch;
  JitMode Jit;
};

class MeldDiff : public ::testing::TestWithParam<DiffCase> {};

TEST_P(MeldDiff, ValidatesAgainstGoldenReference) {
  const DiffCase &C = GetParam();
  const Workload *W = findWorkload(C.WorkloadName);
  ASSERT_NE(W, nullptr);
  LaunchOptions O;
  O.MaxWarpSize = C.Width;
  O.Branch = C.Branch;
  O.Jit = C.Jit;
  auto S = runWorkload(*W, 1, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  EXPECT_GT(S->ExitYields, 0u); // every launch fully retires its threads
}

std::vector<DiffCase> makeDiffCases() {
  std::vector<DiffCase> Cases;
  for (const char *Name : {"LoopTrip", "Bfs", "Spmv"})
    for (uint32_t Width : {1u, 2u, 4u, 8u})
      for (BranchMode B :
           {BranchMode::Yield, BranchMode::Predicate, BranchMode::Meld})
        for (JitMode J : {JitMode::Interp, JitMode::Native})
          Cases.push_back({Name, Width, B, J});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MeldDiff, ::testing::ValuesIn(makeDiffCases()),
    [](const auto &Info) {
      const DiffCase &C = Info.param;
      return std::string(C.WorkloadName) + "_w" + std::to_string(C.Width) +
             "_" + branchModeName(C.Branch) + "_" + jitModeName(C.Jit);
    });

TEST(MeldEffect, MeldingRemovesDivergenceYields) {
  // The pass must actually fire on the irregular workloads: at width 4 the
  // forced-meld plan turns the per-iteration divergent backedge into a
  // masked loop, so branch yields must drop well below the forced-yield
  // run's. (Outputs are validated by runWorkload either way.)
  for (const char *Name : {"LoopTrip", "Bfs", "Spmv"}) {
    const Workload *W = findWorkload(Name);
    ASSERT_NE(W, nullptr);
    LaunchOptions Yield;
    Yield.MaxWarpSize = 4;
    Yield.Branch = BranchMode::Yield;
    auto YS = runWorkload(*W, 1, Yield);
    ASSERT_TRUE(static_cast<bool>(YS)) << YS.status().message();
    LaunchOptions Meld = Yield;
    Meld.Branch = BranchMode::Meld;
    auto MS = runWorkload(*W, 1, Meld);
    ASSERT_TRUE(static_cast<bool>(MS)) << MS.status().message();
    EXPECT_GT(YS->BranchYields, 0u) << Name;
    EXPECT_LT(MS->BranchYields, YS->BranchYields / 2) << Name;
  }
}

TEST(MeldEffect, YieldsAreAttributedToSites) {
  // Per-site attribution feeds the PGO profile: under the all-yield plan
  // the divergent workloads must report site-resolved yields that account
  // for (nearly) all branch yields.
  const Workload *W = findWorkload("LoopTrip");
  ASSERT_NE(W, nullptr);
  LaunchOptions O;
  O.MaxWarpSize = 4;
  O.Branch = BranchMode::Yield;
  auto S = runWorkload(*W, 1, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  ASSERT_GT(S->BranchYields, 0u);
  ASSERT_FALSE(S->SiteBranchYields.empty());
  uint64_t Attributed = 0;
  for (uint64_t Y : S->SiteBranchYields)
    Attributed += Y;
  EXPECT_EQ(Attributed, S->BranchYields);
}

//===----------------------------------------------------------------------===
// Divergence PGO: explore, commit, exploit
//===----------------------------------------------------------------------===

// Drives one (kernel, width) trial launch: asks the chooser for the
// current slot's plan and reports back \p Secs for it, with divergence
// yields attributed to "" launches only (the transformed plans remove
// them — that is their point).
static std::string driveLaunch(SpecializationService &Svc, uint32_t Width,
                               const std::vector<uint64_t> &YieldsUnderLegacy,
                               double SecsLegacy, double SecsP,
                               double SecsM) {
  std::string Plan = Svc.chooseBranchPlan("k", Width);
  double Secs = Plan == "p" ? SecsP : Plan == "m" ? SecsM : SecsLegacy;
  Svc.recordBranchSample("k", Width, Plan,
                         Plan.empty() ? YieldsUnderLegacy
                                      : std::vector<uint64_t>{0, 0},
                         Secs);
  return Plan;
}

TEST(MeldPgo, ServiceCommitsWallArgminPlan) {
  auto M = parseModuleOrDie(DiamondSrc);
  SpecializationOptions Opts;
  Opts.BranchExploreLaunches = 3;
  SpecializationService Svc(*M, MachineModel{}, Opts);
  EXPECT_EQ(Svc.chooseBranchPlan("k", 4), "");
  EXPECT_EQ(Svc.committedBranchPlan("k", 4), "");
  // A stale in-flight launch from another plan must not pollute the slot.
  Svc.recordBranchSample("k", 4, "m", {99, 99}, 0.001);
  // "" diverges and costs 1.0s; "p" halves it; "m" lands in between. The
  // trial round-robins ""/"p"/"m" and must commit the argmin, "p".
  std::vector<std::string> Seen;
  for (int I = 0; I < 9; ++I)
    Seen.push_back(driveLaunch(Svc, 4, {5, 0}, 1.0, 0.5, 0.7));
  EXPECT_EQ(Seen[0], "");
  EXPECT_EQ(Seen[1], "p");
  EXPECT_EQ(Seen[2], "m");
  EXPECT_EQ(Seen[3], ""); // round-robin, not consecutive stages
  EXPECT_TRUE(Svc.branchPlanCommitted("k", 4));
  EXPECT_EQ(Svc.committedBranchPlan("k", 4), "p");
  EXPECT_EQ(Svc.chooseBranchPlan("k", 4), "p");
}

TEST(MeldPgo, ArgminScoresMinimumNotMean) {
  // A candidate's first launch pays its artifact compile; the trial must
  // score steady-state (minimum) seconds or short kernels would never
  // adopt a transform. "p" stalls to 10.0s once, then runs at 0.5s.
  auto M = parseModuleOrDie(DiamondSrc);
  SpecializationOptions Opts;
  Opts.BranchExploreLaunches = 3;
  SpecializationService Svc(*M, MachineModel{}, Opts);
  bool FirstP = true;
  for (int I = 0; I < 9; ++I) {
    std::string Plan = Svc.chooseBranchPlan("k", 4);
    double Secs = Plan == "p" ? (FirstP ? 10.0 : 0.5) : Plan == "m" ? 2.0
                                                                    : 1.0;
    if (Plan == "p")
      FirstP = false;
    Svc.recordBranchSample("k", 4, Plan,
                           Plan.empty() ? std::vector<uint64_t>{5, 0}
                                        : std::vector<uint64_t>{0, 0},
                           Secs);
  }
  EXPECT_EQ(Svc.committedBranchPlan("k", 4), "p");
}

TEST(MeldPgo, NoiseDoesNotUnseatTheLegacyPlan) {
  // A challenger must beat the reigning candidate by >2% of best wall
  // seconds; within-noise wins stay with "" so the kernel keeps sharing
  // the pre-PGO artifacts.
  auto M = parseModuleOrDie(DiamondSrc);
  SpecializationOptions Opts;
  Opts.BranchExploreLaunches = 2;
  SpecializationService Svc(*M, MachineModel{}, Opts);
  for (int I = 0; I < 6; ++I)
    driveLaunch(Svc, 4, {5, 0}, 1.0, 0.99, 0.995); // both within 2%
  EXPECT_TRUE(Svc.branchPlanCommitted("k", 4));
  EXPECT_EQ(Svc.committedBranchPlan("k", 4), "");
}

TEST(MeldPgo, AllConvergentKernelCommitsLegacyPlanWithoutTrials) {
  auto M = parseModuleOrDie(DiamondSrc);
  SpecializationOptions Opts;
  Opts.BranchExploreLaunches = 2;
  SpecializationService Svc(*M, MachineModel{}, Opts);
  // No divergence under the very first "" launch: divergence is
  // shape-deterministic, so the trial commits "" immediately instead of
  // burning launches on plans with nothing to remove.
  driveLaunch(Svc, 4, {0, 0}, 1.0, 1.0, 1.0);
  EXPECT_TRUE(Svc.branchPlanCommitted("k", 4));
  EXPECT_EQ(Svc.committedBranchPlan("k", 4), "");
  EXPECT_EQ(Svc.chooseBranchPlan("k", 4), "");
}

TEST(MeldPgo, TrialsArePerWidth) {
  // The profitable policy is width-dependent (wider warps over-execute
  // more under masks), so each width runs its own trial.
  auto M = parseModuleOrDie(DiamondSrc);
  SpecializationOptions Opts;
  Opts.BranchExploreLaunches = 1;
  SpecializationService Svc(*M, MachineModel{}, Opts);
  for (int I = 0; I < 3; ++I)
    driveLaunch(Svc, 4, {7, 0}, 1.0, 0.4, 0.2); // "m" wins at width 4
  EXPECT_EQ(Svc.committedBranchPlan("k", 4), "m");
  EXPECT_FALSE(Svc.branchPlanCommitted("k", 8));
  for (int I = 0; I < 3; ++I)
    driveLaunch(Svc, 8, {7, 0}, 1.0, 2.0, 3.0); // transforms regress
  EXPECT_EQ(Svc.committedBranchPlan("k", 8), "");
  EXPECT_TRUE(Svc.branchPlanCommitted("k", 8));
  EXPECT_EQ(Svc.committedBranchPlan("k", 4), "m"); // unchanged
}

TEST(MeldPgo, WidthOneNeverTrials) {
  // A 1-wide warp cannot diverge: no plan, no trial, no commitment.
  auto M = parseModuleOrDie(DiamondSrc);
  SpecializationOptions Opts;
  Opts.BranchExploreLaunches = 1;
  SpecializationService Svc(*M, MachineModel{}, Opts);
  for (int I = 0; I < 8; ++I) {
    EXPECT_EQ(Svc.chooseBranchPlan("k", 1), "");
    Svc.recordBranchSample("k", 1, "", {0, 0}, 1.0);
  }
  EXPECT_FALSE(Svc.branchPlanCommitted("k", 1));
}

TEST(MeldPgo, AutoPolicyCommitsPlanEndToEnd) {
  // Launch the divergent LoopTrip workload repeatedly under BranchMode::
  // Pgo against one Program: the trial walks the candidate ladder on real
  // wall measurements and must converge on *some* plan (which one is the
  // machine's business), after which every launch runs the committed plan
  // and outputs keep validating.
  const Workload *W = findWorkload("LoopTrip");
  ASSERT_NE(W, nullptr);
  std::unique_ptr<Program> Prog = compileWorkload(*W);
  auto Inst = W->Make(1);
  LaunchOptions O;
  O.MaxWarpSize = 4;
  O.Branch = BranchMode::Pgo;
  // 3 candidates x BranchExploreLaunches(3) = 9 launches to converge; a
  // couple more exercise the exploit path.
  for (int I = 0; I < 11; ++I) {
    auto S = Prog->launch(*Inst->Dev, W->KernelName, Inst->Grid, Inst->Block,
                          Inst->Params, O);
    ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
    std::string Error;
    ASSERT_TRUE(Inst->Check(*Inst->Dev, Error)) << Error;
  }
  EXPECT_TRUE(Prog->specialization().branchPlanCommitted(W->KernelName, 4));
  // Width 8 never launched: its trial must not have been touched.
  EXPECT_FALSE(Prog->specialization().branchPlanCommitted(W->KernelName, 8));
}

} // namespace
