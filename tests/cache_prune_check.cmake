# Prune-order gate for `cache_tool prune --max-bytes`: the size-cap pass
# must evict by *recency of use* (atime), not by write time, and must fall
# back to mtime ordering on stores where the filesystem never advances
# atimes (noatime / settled relatime), where atime carries no signal.
#
# Cases A/B drive the policy with synthetic .svcp profiles (profiles are
# never content-inspected by prune, so their bytes and times are fully
# under test control). Case C exercises the real artifact path: a
# wallclock-populated store where the health checks READ every .svca —
# cache_tool must capture the LRU timestamps before those reads bump them.

find_program(TOUCH touch REQUIRED)

# --- case A: live atimes -> evict the least-recently-USED entry -------------
# Three 100-byte profiles. b has the OLDEST mtime but the NEWEST atime (it
# was written long ago and read yesterday); c is the least recently used.
# The pre-fix mtime ordering would evict b. Correct LRU evicts c.
set(DIR_A ${OUT}.prune_a)
file(REMOVE_RECURSE ${DIR_A})
file(MAKE_DIRECTORY ${DIR_A})
string(REPEAT "x" 100 blob)
foreach(name a b c)
  file(WRITE ${DIR_A}/${name}.svcp "${blob}")
endforeach()
execute_process(COMMAND ${TOUCH} -d "2020-01-03 00:00:00" ${DIR_A}/a.svcp)
execute_process(COMMAND ${TOUCH} -d "2020-01-01 00:00:00" ${DIR_A}/b.svcp)
execute_process(COMMAND ${TOUCH} -d "2020-01-02 00:00:00" ${DIR_A}/c.svcp)
execute_process(COMMAND ${TOUCH} -a -d "2020-01-05 00:00:00" ${DIR_A}/b.svcp)

execute_process(COMMAND ${CACHE_TOOL} --dir ${DIR_A} prune --max-bytes 250
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "prune (case A) exited with ${rc}:\n${out}")
endif()
if(NOT out MATCHES "evicted c\\.svcp")
  message(FATAL_ERROR "case A: expected c.svcp (LRU by atime) evicted:\n${out}")
endif()
if(NOT EXISTS ${DIR_A}/b.svcp)
  message(FATAL_ERROR "case A: b.svcp (oldest mtime, newest atime) was "
    "evicted — prune ignored access recency:\n${out}")
endif()
if(NOT EXISTS ${DIR_A}/a.svcp)
  message(FATAL_ERROR "case A: a.svcp should have survived:\n${out}")
endif()

# --- case B: frozen atimes -> fall back to mtime order ----------------------
# Every atime equals its mtime (as on a noatime mount): recency is
# unobservable, so eviction must degrade to oldest-write-first.
set(DIR_B ${OUT}.prune_b)
file(REMOVE_RECURSE ${DIR_B})
file(MAKE_DIRECTORY ${DIR_B})
foreach(name a b c)
  file(WRITE ${DIR_B}/${name}.svcp "${blob}")
endforeach()
execute_process(COMMAND ${TOUCH} -d "2020-01-05 00:00:00" ${DIR_B}/a.svcp)
execute_process(COMMAND ${TOUCH} -d "2020-01-01 00:00:00" ${DIR_B}/b.svcp)
execute_process(COMMAND ${TOUCH} -d "2020-01-03 00:00:00" ${DIR_B}/c.svcp)

execute_process(COMMAND ${CACHE_TOOL} --dir ${DIR_B} prune --max-bytes 250
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "prune (case B) exited with ${rc}:\n${out}")
endif()
if(NOT out MATCHES "evicted b\\.svcp")
  message(FATAL_ERROR "case B: expected b.svcp (oldest mtime) evicted under "
    "the mtime fallback:\n${out}")
endif()
if(NOT EXISTS ${DIR_B}/a.svcp OR NOT EXISTS ${DIR_B}/c.svcp)
  message(FATAL_ERROR "case B: wrong survivors:\n${out}")
endif()

# --- case C: real store — timestamps captured before the health reads -------
# Populate via the bench harness, mark one artifact cold (both times deep in
# the past) and the rest freshly used (future atime, so the store clearly
# tracks atimes). prune's health pass reads every artifact; if cache_tool
# stat()ed after inspecting, every atime would be "now" and the eviction
# order would collapse to name order instead of hitting the cold file.
set(DIR_C ${OUT}.prune_c)
file(REMOVE_RECURSE ${DIR_C})
file(MAKE_DIRECTORY ${DIR_C})
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_CACHE_DIR=${DIR_C}
    ${WALLCLOCK} --metrics ${OUT}.prune_cold.json 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE cold)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "wallclock populate run exited with ${rc}")
endif()
file(GLOB artifacts ${DIR_C}/*.svca)
list(LENGTH artifacts n_artifacts)
if(n_artifacts LESS 2)
  message(FATAL_ERROR "expected >= 2 artifacts, found ${n_artifacts}")
endif()
list(SORT artifacts)
list(GET artifacts 0 cold_artifact)
get_filename_component(cold_name ${cold_artifact} NAME)
execute_process(COMMAND ${TOUCH} -d "2001-01-01 00:00:00" ${cold_artifact})
foreach(a ${artifacts})
  if(NOT a STREQUAL cold_artifact)
    execute_process(COMMAND ${TOUCH} -a -d "2030-01-01 00:00:00" ${a})
  endif()
endforeach()
# Cap = store size - 1: exactly one eviction needed, and it must be the
# cold artifact regardless of its position in name order.
set(total 0)
file(GLOB everything ${DIR_C}/*.svca ${DIR_C}/*.svcp ${DIR_C}/*.so)
foreach(f ${everything})
  file(SIZE ${f} sz)
  math(EXPR total "${total} + ${sz}")
endforeach()
math(EXPR cap "${total} - 1")
execute_process(COMMAND ${CACHE_TOOL} --dir ${DIR_C} prune --max-bytes ${cap}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "prune (case C) exited with ${rc}:\n${out}")
endif()
if(EXISTS ${cold_artifact})
  message(FATAL_ERROR "case C: cold artifact ${cold_name} survived the cap "
    "— LRU timestamps were read after the health inspection:\n${out}")
endif()
if(NOT out MATCHES "evicted ")
  message(FATAL_ERROR "case C: prune reported no eviction:\n${out}")
endif()

# The store stays healthy after eviction, and a warm run simply recompiles
# the evicted translation.
execute_process(COMMAND ${CACHE_TOOL} --dir ${DIR_C} verify
  RESULT_VARIABLE rc OUTPUT_VARIABLE vout)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "store corrupt after prune:\n${vout}")
endif()
