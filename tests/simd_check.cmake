# SIMD-path gate: the forced-vector and forced-scalar lane-kernel paths
# must be observationally identical everywhere the model can see — same
# em.* modeled-execution metrics (the aggregated LaunchStats) over the full
# wallclock workload sweep — while the env knob selects the path end to end
# (the JSON header records which path actually ran). Invalid SIMTVEC_SIMD
# values must warn on stderr and fall back to auto, never fail the run.

# --- forced-vector sweep ----------------------------------------------------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_SIMD=vector
    ${WALLCLOCK} --metrics ${OUT}.vec 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE vec)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "forced-vector wallclock run exited with ${rc}")
endif()
file(READ ${OUT}.vec vec_json)
if(NOT vec_json MATCHES "\"simd\": \"vector\"")
  message(FATAL_ERROR
    "SIMTVEC_SIMD=vector did not select the vector path:\n${vec_json}")
endif()

# --- forced-scalar sweep ----------------------------------------------------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_SIMD=scalar
    ${WALLCLOCK} --metrics ${OUT}.sca 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE sca)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "forced-scalar wallclock run exited with ${rc}")
endif()
file(READ ${OUT}.sca sca_json)
if(NOT sca_json MATCHES "\"simd\": \"scalar\"")
  message(FATAL_ERROR
    "SIMTVEC_SIMD=scalar did not select the scalar path:\n${sca_json}")
endif()

# Modeled counters are computed from the decoded stream, which the SIMD path
# must not perturb: every em.* metric agrees bit-for-bit across the paths.
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" vec_em "${vec}")
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" sca_em "${sca}")
if(NOT vec_em)
  message(FATAL_ERROR "forced-vector run reported no em.* metrics:\n${vec}")
endif()
if(NOT "${vec_em}" STREQUAL "${sca_em}")
  message(FATAL_ERROR "modeled metrics differ between SIMD paths:\n"
    "vector: ${vec_em}\nscalar: ${sca_em}")
endif()

# --- differential gtest suites under each forced path -----------------------
# The ShapeExec/FastPath suites compare decoded-engine output and counters
# against the IR-walking reference engine, so running them under each forced
# path re-proves the whole contract inside the normal test harness.
foreach(path vector scalar)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_SIMD=${path}
      ${TESTS} --gtest_brief=1
      --gtest_filter=ShapeExec.*:FastPathTest.*:SimdKernelDiff.*
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "differential suites failed under SIMTVEC_SIMD=${path}:\n${out}${err}")
  endif()
endforeach()

# --- invalid values warn and fall back to auto ------------------------------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_SIMD=bogus
    ${WALLCLOCK} ${OUT}.bogus 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run with invalid SIMTVEC_SIMD exited with ${rc}")
endif()
if(NOT err MATCHES "ignoring invalid SIMTVEC_SIMD='bogus'")
  message(FATAL_ERROR
    "invalid SIMTVEC_SIMD did not produce the stderr warning:\n${err}")
endif()
