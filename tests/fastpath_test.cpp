//===- tests/fastpath_test.cpp - Fast-path engine and cache tests ---------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Covers the pre-decoded execution engine and the contention-free
// translation cache:
//  - concurrency: many OS threads hammering TranslationCache::get() cold and
//    warm must observe exactly one compile per key and identical executables;
//  - differential: the decoded engine must match the reference IR-walking
//    engine bit-for-bit — outputs, modeled cycle counters, entry histograms;
//  - address-overflow regression: accesses whose address + size wraps past
//    UINT64_MAX must trap, not slip past the bounds check.
//
//===----------------------------------------------------------------------===//

#include "simtvec/core/TranslationCache.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/runtime/Runtime.h"
#include "simtvec/workloads/Workloads.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <thread>

using namespace simtvec;

namespace {

const char *DivergentSrc = R"(
.kernel dk (.param .u64 p)
{
  .reg .u32 %t, %x;
  .reg .u64 %a, %off;
  .reg .pred %c;
entry:
  mov.u32 %t, %tid.x;
  and.u32 %x, %t, 1;
  setp.eq.u32 %c, %x, 1;
  @%c bra odd, even;
odd:
  mul.u32 %x, %t, 3;
  bra join;
even:
  mul.u32 %x, %t, 5;
  bra join;
join:
  ld.param.u64 %a, [p];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %x;
  ret;
}
)";

//===----------------------------------------------------------------------===
// Translation-cache concurrency
//===----------------------------------------------------------------------===

TEST(FastPathTest, CacheConcurrentGetCompilesEachKeyOnce) {
  auto M = parseModuleOrDie(DivergentSrc);
  MachineModel Machine;
  TranslationCache TC(*M, Machine);

  const uint32_t Widths[] = {1, 2, 4, 8};
  constexpr unsigned NumThreads = 16;
  constexpr unsigned RoundsPerThread = 50;

  // Each thread records the executable pointer it saw per width.
  std::vector<std::array<const KernelExec *, 4>> Seen(NumThreads);
  std::vector<bool> Failed(NumThreads, false);

  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned Round = 0; Round < RoundsPerThread; ++Round) {
        for (size_t WI = 0; WI < 4; ++WI) {
          TranslationCache::Key Key{"dk", Widths[WI], false, false, false};
          auto ExecOrErr = TC.get(Key);
          if (!ExecOrErr) {
            Failed[T] = true;
            return;
          }
          const KernelExec *P = ExecOrErr->get();
          if (Round == 0) {
            Seen[T][WI] = P;
          } else if (Seen[T][WI] != P) {
            Failed[T] = true; // cache returned a different executable
            return;
          }
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  for (unsigned T = 0; T < NumThreads; ++T)
    EXPECT_FALSE(Failed[T]) << "thread " << T;

  // Every thread must have resolved each width to the same executable.
  for (size_t WI = 0; WI < 4; ++WI)
    for (unsigned T = 1; T < NumThreads; ++T)
      EXPECT_EQ(Seen[0][WI], Seen[T][WI]) << "width " << Widths[WI];

  // Exactly one compile per key, everything else a hit.
  auto S = TC.stats();
  EXPECT_EQ(S.Misses, 4u);
  EXPECT_EQ(S.Hits + S.Misses,
            static_cast<uint64_t>(NumThreads) * RoundsPerThread * 4);
}

//===----------------------------------------------------------------------===
// Decoded engine vs. reference engine
//===----------------------------------------------------------------------===

struct EngineRun {
  LaunchStats Stats;
  std::vector<std::byte> Arena;
};

EngineRun runEngine(const Workload &W, uint32_t Scale, uint32_t MaxWarpSize,
                    bool Reference) {
  auto Prog = compileWorkload(W);
  auto Inst = W.Make(Scale);
  LaunchOptions Options;
  Options.MaxWarpSize = MaxWarpSize;
  Options.Workers = 1;
  Options.UseOsThreads = false;
  Options.UseReferenceInterp = Reference;
  auto StatsOrErr = Prog->launch(*Inst->Dev, W.KernelName, Inst->Grid,
                                 Inst->Block, Inst->Params, Options);
  EXPECT_TRUE(static_cast<bool>(StatsOrErr))
      << W.Name << ": " << StatsOrErr.status().message();
  EngineRun R;
  if (StatsOrErr)
    R.Stats = *StatsOrErr;
  std::string Error;
  EXPECT_TRUE(Inst->Check(*Inst->Dev, Error)) << W.Name << ": " << Error;
  R.Arena.assign(Inst->Dev->data(), Inst->Dev->data() + Inst->Dev->size());
  return R;
}

TEST(FastPathTest, DecodedEngineMatchesReferenceBitForBit) {
  const char *Names[] = {"VectorAdd", "Mandelbrot", "Histogram64",
                         "BinomialOptions", "Reduction", "Scan"};
  for (const char *Name : Names) {
    const Workload *W = findWorkload(Name);
    ASSERT_NE(W, nullptr) << Name;
    for (uint32_t Width : {1u, 4u}) {
      SCOPED_TRACE(std::string(Name) + " width " + std::to_string(Width));
      EngineRun Fast = runEngine(*W, 1, Width, false);
      EngineRun Ref = runEngine(*W, 1, Width, true);

      // Memory effects: the whole device arena must match byte for byte.
      ASSERT_EQ(Fast.Arena.size(), Ref.Arena.size());
      EXPECT_EQ(0, std::memcmp(Fast.Arena.data(), Ref.Arena.data(),
                               Fast.Arena.size()));

      // Modeled counters are part of the semantics: exact FP equality.
      EXPECT_EQ(Fast.Stats.Counters.SubkernelCycles,
                Ref.Stats.Counters.SubkernelCycles);
      EXPECT_EQ(Fast.Stats.Counters.YieldCycles,
                Ref.Stats.Counters.YieldCycles);
      EXPECT_EQ(Fast.Stats.Counters.EMCycles, Ref.Stats.Counters.EMCycles);
      EXPECT_EQ(Fast.Stats.Counters.Flops, Ref.Stats.Counters.Flops);
      EXPECT_EQ(Fast.Stats.Counters.InstsExecuted,
                Ref.Stats.Counters.InstsExecuted);
      EXPECT_EQ(Fast.Stats.Counters.VectorInsts,
                Ref.Stats.Counters.VectorInsts);
      EXPECT_EQ(Fast.Stats.Counters.SpilledValues,
                Ref.Stats.Counters.SpilledValues);
      EXPECT_EQ(Fast.Stats.Counters.RestoredValues,
                Ref.Stats.Counters.RestoredValues);
      EXPECT_EQ(Fast.Stats.Counters.GlobalAccesses,
                Ref.Stats.Counters.GlobalAccesses);
      EXPECT_EQ(Fast.Stats.Counters.GlobalMisses,
                Ref.Stats.Counters.GlobalMisses);
      EXPECT_EQ(Fast.Stats.EntriesByWidth, Ref.Stats.EntriesByWidth);
      EXPECT_EQ(Fast.Stats.WarpEntries, Ref.Stats.WarpEntries);
      EXPECT_EQ(Fast.Stats.ThreadEntries, Ref.Stats.ThreadEntries);
      EXPECT_EQ(Fast.Stats.BranchYields, Ref.Stats.BranchYields);
      EXPECT_EQ(Fast.Stats.BarrierYields, Ref.Stats.BarrierYields);
      EXPECT_EQ(Fast.Stats.ExitYields, Ref.Stats.ExitYields);
    }
  }
}

//===----------------------------------------------------------------------===
// Address-overflow regression
//===----------------------------------------------------------------------===

const char *OobLoadSrc = R"(
.kernel oob (.param .u64 p)
{
  .reg .u64 %a;
  .reg .u32 %x;
entry:
  ld.param.u64 %a, [p];
  ld.global.u32 %x, [%a];
  st.global.u32 [%a], %x;
  ret;
}
)";

const char *OobSharedSrc = R"(
.kernel oobs (.param .u64 p)
{
  .shared .b8 s[64];
  .reg .u64 %a;
  .reg .u32 %x;
entry:
  ld.param.u64 %a, [p];
  mov.u32 %x, 7;
  st.shared.u32 [%a], %x;
  ret;
}
)";

TEST(FastPathTest, NearMaxAddressTrapsInsteadOfWrapping) {
  // Addr + 4 wraps to 0, which a naive `Addr + Size > Limit` check accepts.
  const uint64_t NearMax = ~0ull - 3;
  for (bool Reference : {false, true}) {
    SCOPED_TRACE(Reference ? "reference" : "decoded");
    auto ProgOrErr = Program::compile(OobLoadSrc);
    ASSERT_TRUE(static_cast<bool>(ProgOrErr))
        << ProgOrErr.status().message();
    Device Dev(1 << 16);
    ParamBuilder Params;
    Params.u64(NearMax);
    LaunchOptions Options;
    Options.UseOsThreads = false;
    Options.UseReferenceInterp = Reference;
    auto Stats = (*ProgOrErr)->launch(Dev, "oob", {1, 1, 1}, {1, 1, 1},
                                      Params, Options);
    ASSERT_FALSE(static_cast<bool>(Stats));
    EXPECT_NE(Stats.status().message().find("out-of-bounds global access"),
              std::string::npos)
        << Stats.status().message();
  }
}

TEST(FastPathTest, NearMaxSharedAddressTraps) {
  const uint64_t NearMax = ~0ull - 3;
  auto ProgOrErr = Program::compile(OobSharedSrc);
  ASSERT_TRUE(static_cast<bool>(ProgOrErr)) << ProgOrErr.status().message();
  Device Dev(1 << 16);
  ParamBuilder Params;
  Params.u64(NearMax);
  LaunchOptions Options;
  Options.UseOsThreads = false;
  auto Stats = (*ProgOrErr)->launch(Dev, "oobs", {1, 1, 1}, {1, 1, 1},
                                    Params, Options);
  ASSERT_FALSE(static_cast<bool>(Stats));
  EXPECT_NE(Stats.status().message().find("out-of-bounds shared access"),
            std::string::npos)
      << Stats.status().message();
}

} // namespace
