# Divergence-reduction gate. Forced branch policies must select end to end
# (JSON header + per-cell "branch" field), every workload must validate
# under each policy, modeled em.* metrics must be reproducible *within* a
# policy (across repeat runs and across execution tiers — across policies
# they legitimately move: that is the whole point of melding), the
# SIMTVEC_BRANCH=auto PGO path must persist its committed branch plans in
# the .svcp profile and reload them warm with zero recompiles, invalid
# knob values must warn and fall back, and bench_diff must key the new
# branch dimension (including --strip-branch for cross-policy diffs).

# --- forced-yield and forced-meld sweeps ------------------------------------
execute_process(COMMAND ${WALLCLOCK} --metrics --branch yield ${OUT}.yield 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE yield_run)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "forced-yield wallclock run exited with ${rc}")
endif()
file(READ ${OUT}.yield yield_json)
if(NOT yield_json MATCHES "\"branch\": \"yield\"")
  message(FATAL_ERROR "--branch yield not recorded in JSON:\n${yield_json}")
endif()

execute_process(COMMAND ${WALLCLOCK} --metrics --branch meld ${OUT}.meld 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE meld_run)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "forced-meld wallclock run exited with ${rc} "
    "(workload validation fails the run, so melded outputs were wrong)")
endif()
file(READ ${OUT}.meld meld_json)
if(NOT meld_json MATCHES "\"branch\": \"meld\"")
  message(FATAL_ERROR "--branch meld not recorded in JSON:\n${meld_json}")
endif()

# The divergent workloads must attribute their yields: the forced-yield
# sweep reports per-site branch-yield counters the PGO policy consumes.
if(NOT yield_run MATCHES "em\\.branch_yields")
  message(FATAL_ERROR
    "forced-yield run reported no em.branch_yields counters:\n${yield_run}")
endif()

# --- within-policy reproducibility ------------------------------------------
# Two forced-meld sweeps must agree on every em.* counter bit-for-bit.
execute_process(COMMAND ${WALLCLOCK} --metrics --branch meld ${OUT}.meld2 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE meld_run2)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second forced-meld run exited with ${rc}")
endif()
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" meld_em "${meld_run}")
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" meld_em2 "${meld_run2}")
if(NOT meld_em)
  message(FATAL_ERROR "forced-meld run reported no em.* metrics:\n${meld_run}")
endif()
if(NOT "${meld_em}" STREQUAL "${meld_em2}")
  message(FATAL_ERROR "forced-meld em.* metrics not reproducible:\n"
    "run1: ${meld_em}\nrun2: ${meld_em2}")
endif()

# ... and the native tier must replay the melded kernels with identical
# modeled metrics (skipped when the host has no C++ toolchain — the tier
# degrades to the interpreter there and the comparison is vacuous).
find_program(JIT_CXX NAMES c++ g++ clang++)
if(JIT_CXX)
  foreach(policy yield meld)
    execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_JIT=native
        ${WALLCLOCK} --metrics --branch ${policy} ${OUT}.${policy}.nat 1 1
      RESULT_VARIABLE rc OUTPUT_VARIABLE nat_run)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "forced-${policy} native-tier run exited with ${rc}")
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_JIT=interp
        ${WALLCLOCK} --metrics --branch ${policy} ${OUT}.${policy}.int 1 1
      RESULT_VARIABLE rc OUTPUT_VARIABLE int_run)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "forced-${policy} interp-tier run exited with ${rc}")
    endif()
    string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" nat_em "${nat_run}")
    string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" int_em "${int_run}")
    if(NOT "${nat_em}" STREQUAL "${int_em}")
      message(FATAL_ERROR "em.* metrics differ between tiers under forced "
        "${policy}:\nnative: ${nat_em}\ninterp: ${int_em}")
    endif()
  endforeach()
else()
  message(STATUS "meld_check: no host C++ toolchain; skipping tier check")
endif()

# --- PGO: branch plans persist in the profile and reload warm ---------------
set(CACHE_DIR ${OUT}.cache)
file(REMOVE_RECURSE ${CACHE_DIR})
file(MAKE_DIRECTORY ${CACHE_DIR})
# reps=9 so each cell's Program performs enough width>1 launches to finish
# the round-robin trial (3 candidates x BranchExploreLaunches=3) and commit
# the wall-argmin plan for its width.
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_BRANCH=auto
    SIMTVEC_CACHE_DIR=${CACHE_DIR} ${WALLCLOCK} --metrics ${OUT}.pgo_cold 1 9
  RESULT_VARIABLE rc OUTPUT_VARIABLE cold)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "PGO cold run exited with ${rc}")
endif()
if(NOT cold MATCHES "tc\\.compile +[1-9]")
  message(FATAL_ERROR "PGO cold run reported no compiles:\n${cold}")
endif()
file(GLOB profiles ${CACHE_DIR}/*.svcp)
if(NOT profiles)
  message(FATAL_ERROR "PGO cold run persisted no .svcp profiles")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_BRANCH=auto
    SIMTVEC_CACHE_DIR=${CACHE_DIR} ${WALLCLOCK} --metrics ${OUT}.pgo_warm 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE warm)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "PGO warm run exited with ${rc}")
endif()
# Zero compiles warm is only possible if the committed branch plans were
# reloaded from the profile: a forgotten plan would re-explore, commit a
# plan whose translation key has no artifact, and compile it.
if(NOT warm MATCHES "tc\\.compile +0[\r\n]")
  message(FATAL_ERROR "PGO warm run recompiled — committed branch plans "
    "were not reloaded from the .svcp profile:\n${warm}")
endif()
if(NOT warm MATCHES "tc\\.disk_hit +[1-9]")
  message(FATAL_ERROR "PGO warm run had no disk hits:\n${warm}")
endif()

# --- invalid SIMTVEC_BRANCH warns once and falls back ------------------------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_BRANCH=bogus
    ${WALLCLOCK} ${OUT}.bogus 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run with invalid SIMTVEC_BRANCH exited with ${rc}")
endif()
if(NOT err MATCHES "ignoring invalid SIMTVEC_BRANCH='bogus'")
  message(FATAL_ERROR
    "invalid SIMTVEC_BRANCH did not produce the stderr warning:\n${err}")
endif()

# --- bench_diff keys the branch dimension -----------------------------------
# Same-policy diff: cells key as (workload, width, workers, simd, jit,
# branch) and every cell matches.
execute_process(COMMAND ${BENCH_DIFF} ${OUT}.meld ${OUT}.meld2
  RESULT_VARIABLE rc OUTPUT_VARIABLE diff_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_diff failed on same-policy files:\n${diff_out}")
endif()
if(NOT diff_out MATCHES "geomean speedup")
  message(FATAL_ERROR "bench_diff reported no geomean:\n${diff_out}")
endif()
# Cross-policy diff: without --strip-branch the cells share no key (yield
# vs meld) and bench_diff must refuse for want of common cells; with it,
# the policy becomes the experiment and every cell compares.
execute_process(COMMAND ${BENCH_DIFF} ${OUT}.yield ${OUT}.meld
  RESULT_VARIABLE rc OUTPUT_VARIABLE diff_out)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "bench_diff compared disjoint branch policies as if keyed:\n${diff_out}")
endif()
execute_process(COMMAND ${BENCH_DIFF} --strip-branch ${OUT}.yield ${OUT}.meld
  RESULT_VARIABLE rc OUTPUT_VARIABLE diff_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench_diff --strip-branch failed on cross-policy files:\n${diff_out}")
endif()
if(NOT diff_out MATCHES "geomean speedup")
  message(FATAL_ERROR
    "bench_diff --strip-branch reported no geomean:\n${diff_out}")
endif()
