# Serving gate: the real svcd daemon, end to end. Four daemon lifecycles
# against one artifact store prove the serving contract the subsystem
# exists for:
#
#   cold    a fresh daemon compiles its tenants' kernels and publishes the
#           artifacts (tc.compile > 0, tc.disk_write > 0)
#   warm    a second daemon over the same store serves the same tenants
#           with ZERO compiles (tc.compile 0, tc.jit_compile 0, disk hits)
#   capped  a daemon armed with SIMTVEC_CACHE_MAX_BYTES=1 lets the
#           in-process CacheGovernor prune the store (cache.prune_*
#           metrics fire, cache_tool stats agrees the store fits the cap)
#           while every client still exits clean
#   repair  a daemon over the pruned store recompiles transparently
#           (tc.compile > 0 again, clients clean)
#
# Each lifecycle runs two concurrent client *processes* (serve_soak's
# hidden --client-child mode), then SIGTERMs the daemon and waits for the
# graceful drain; the daemon's --metrics dump on stdout is what the
# assertions read. Protocol-fuzz and session-isolation cases live in the
# Serve gtest suites — this script is the multi-process operator view.

set(CLIENT_LAUNCHES 8)
set(CLIENT_ELEMS 256)

# Runs one daemon lifecycle under the environment given in ARGN
# (VAR=VALUE strings): start svcd, wait for the socket to bind, drive two
# concurrent client sessions, SIGTERM, wait for the drain. The --metrics
# dump lands in ${metrics_var}; any client or daemon failure is fatal.
function(run_daemon tag metrics_var)
  set(sock ${OUT}.${tag}.sock)
  file(REMOVE ${sock})
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${ARGN} sh -c "
      '${SVCD}' --socket '${sock}' --metrics 2>'${OUT}.${tag}.log' &
      pid=$!
      while [ ! -S '${sock}' ]; do
        kill -0 $pid 2>/dev/null || exit 9
        sleep 0.1
      done
      '${SOAK}' --client-child '${sock}' ${CLIENT_LAUNCHES} ${CLIENT_ELEMS} '${OUT}.${tag}.lat1' &
      c1=$!
      '${SOAK}' --client-child '${sock}' ${CLIENT_LAUNCHES} ${CLIENT_ELEMS} '${OUT}.${tag}.lat2' &
      c2=$!
      rc=0
      wait $c1 || rc=3
      wait $c2 || rc=3
      kill -TERM $pid
      wait $pid || rc=4
      exit $rc"
    RESULT_VARIABLE rc OUTPUT_VARIABLE mout ERROR_VARIABLE merr)
  if(NOT rc EQUAL 0)
    set(daemon_log "<missing>")
    if(EXISTS ${OUT}.${tag}.log)
      file(READ ${OUT}.${tag}.log daemon_log)
    endif()
    message(FATAL_ERROR "serve_check ${tag}: lifecycle exited ${rc} "
      "(9=no bind, 3=client failed, 4=daemon failed)\n${merr}\n"
      "daemon log:\n${daemon_log}")
  endif()
  set(${metrics_var} "${mout}" PARENT_SCOPE)
endfunction()

set(STORE ${OUT}.cache)
file(REMOVE_RECURSE ${STORE})
file(MAKE_DIRECTORY ${STORE})

# --- cold: first daemon compiles and publishes ------------------------------
run_daemon(cold cold_metrics SIMTVEC_CACHE_DIR=${STORE})
if(NOT cold_metrics MATCHES "tc\\.compile +[1-9]")
  message(FATAL_ERROR "cold daemon reported no compiles:\n${cold_metrics}")
endif()
if(NOT cold_metrics MATCHES "tc\\.disk_write +[1-9]")
  message(FATAL_ERROR "cold daemon published no artifacts:\n${cold_metrics}")
endif()

# --- warm: second daemon over the same store compiles NOTHING ---------------
run_daemon(warm warm_metrics SIMTVEC_CACHE_DIR=${STORE})
if(NOT warm_metrics MATCHES "tc\\.compile +0")
  message(FATAL_ERROR "warm daemon compiled (expected tc.compile 0):\n"
    "${warm_metrics}")
endif()
if(warm_metrics MATCHES "tc\\.jit_compile +[1-9]")
  message(FATAL_ERROR "warm daemon re-ran the native JIT (expected "
    "tc.jit_compile 0):\n${warm_metrics}")
endif()
if(NOT warm_metrics MATCHES "tc\\.disk_hit +[1-9]")
  message(FATAL_ERROR "warm daemon resolved nothing from disk:\n"
    "${warm_metrics}")
endif()

# --- capped: the CacheGovernor prunes in-process ----------------------------
# A 1-byte cap can never be satisfied by keeping entries, so every publish
# is followed by a governor pass that evicts the store down to nothing —
# the strongest form of "prune fires end-to-end" — while the sessions,
# which run from memory, never see an error (client exits are enforced by
# run_daemon).
set(STORE2 ${OUT}.cache_capped)
file(REMOVE_RECURSE ${STORE2})
file(MAKE_DIRECTORY ${STORE2})
run_daemon(capped capped_metrics
  SIMTVEC_CACHE_DIR=${STORE2} SIMTVEC_CACHE_MAX_BYTES=1)
if(NOT capped_metrics MATCHES "cache\\.prune_runs +[1-9]")
  message(FATAL_ERROR "capped daemon never ran the governor:\n"
    "${capped_metrics}")
endif()
if(NOT capped_metrics MATCHES "cache\\.prune_evicted +[1-9]")
  message(FATAL_ERROR "governor ran but evicted nothing:\n${capped_metrics}")
endif()

# The store must actually fit the cap once the daemon drained...
file(GLOB leftover ${STORE2}/*.svca ${STORE2}/*.svcp ${STORE2}/*.so)
set(total 0)
foreach(f ${leftover})
  file(SIZE ${f} sz)
  math(EXPR total "${total} + ${sz}")
endforeach()
if(total GREATER 1)
  message(FATAL_ERROR "store holds ${total} bytes after the capped run "
    "(cap 1): ${leftover}")
endif()

# ...and cache_tool stats must report the configured cap + utilization.
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_CACHE_MAX_BYTES=1
    ${CACHE_TOOL} --dir ${STORE2} stats
  RESULT_VARIABLE rc OUTPUT_VARIABLE stats_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cache_tool stats exited with ${rc}:\n${stats_out}")
endif()
if(NOT stats_out MATCHES "cap: 1 bytes \\(SIMTVEC_CACHE_MAX_BYTES\\)")
  message(FATAL_ERROR "cache_tool stats did not print the configured cap:\n"
    "${stats_out}")
endif()
if(stats_out MATCHES "OVER CAP")
  message(FATAL_ERROR "cache_tool stats says the governed store is over "
    "cap:\n${stats_out}")
endif()

# --- repair: a daemon over the pruned store recompiles transparently --------
run_daemon(repair repair_metrics
  SIMTVEC_CACHE_DIR=${STORE2} SIMTVEC_CACHE_MAX_BYTES=1)
if(NOT repair_metrics MATCHES "tc\\.compile +[1-9]")
  message(FATAL_ERROR "daemon over the pruned store did not recompile:\n"
    "${repair_metrics}")
endif()
