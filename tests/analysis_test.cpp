//===- tests/analysis_test.cpp - CFG/dominators/liveness/variance tests ---===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/analysis/CFG.h"
#include "simtvec/analysis/Dominators.h"
#include "simtvec/analysis/Liveness.h"
#include "simtvec/analysis/LoopInfo.h"
#include "simtvec/analysis/Variance.h"
#include "simtvec/parser/Parser.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

/// Parses a single-kernel module and returns the kernel.
const Kernel &parseK(std::unique_ptr<Module> &Keep, const char *Src) {
  Keep = parseModuleOrDie(Src);
  return *Keep->kernels().front();
}

const char *DiamondSrc = R"(
.kernel diamond (.param .u64 p)
{
  .reg .u32 %a, %b;
  .reg .u64 %addr;
  .reg .pred %c;
entry:
  mov.u32 %a, %tid.x;
  setp.eq.u32 %c, %a, 0;
  @%c bra left, right;
left:
  mov.u32 %b, 1;
  bra join;
right:
  mov.u32 %b, 2;
  bra join;
join:
  ld.param.u64 %addr, [p];
  st.global.u32 [%addr], %b;
  ret;
}
)";

TEST(CFGTest, DiamondStructure) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, DiamondSrc);
  CFG G(K);
  uint32_t Entry = K.findBlock("entry"), Left = K.findBlock("left"),
           Right = K.findBlock("right"), Join = K.findBlock("join");
  EXPECT_EQ(G.successors(Entry).size(), 2u);
  EXPECT_EQ(G.predecessors(Join),
            (std::vector<uint32_t>{Left, Right}));
  EXPECT_TRUE(G.isReachable(Join));
  // RPO starts at the entry and visits every reachable block once.
  EXPECT_EQ(G.reversePostOrder().front(), Entry);
  EXPECT_EQ(G.reversePostOrder().size(), K.Blocks.size());
}

TEST(CFGTest, UnreachableBlockAppended) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel u ()
{
entry:
  ret;
dead:
  ret;
}
)");
  CFG G(K);
  EXPECT_FALSE(G.isReachable(K.findBlock("dead")));
  EXPECT_EQ(G.reversePostOrder().size(), 2u);
}

TEST(DominatorsTest, Diamond) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, DiamondSrc);
  CFG G(K);
  DominatorTree DT(G);
  uint32_t Entry = K.findBlock("entry"), Left = K.findBlock("left"),
           Right = K.findBlock("right"), Join = K.findBlock("join");
  EXPECT_EQ(DT.idom(Left), Entry);
  EXPECT_EQ(DT.idom(Right), Entry);
  EXPECT_EQ(DT.idom(Join), Entry); // neither branch side dominates the join
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Left, Join));
  EXPECT_TRUE(DT.dominates(Join, Join));
}

TEST(DominatorsTest, LoopHeader) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel loopy ()
{
  .reg .u32 %i;
  .reg .pred %p;
entry:
  mov.u32 %i, 0;
  bra head;
head:
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, 10;
  @%p bra head, exit;
exit:
  ret;
}
)");
  CFG G(K);
  DominatorTree DT(G);
  uint32_t Entry = K.findBlock("entry"), Head = K.findBlock("head"),
           Exit = K.findBlock("exit");
  EXPECT_EQ(DT.idom(Head), Entry);
  EXPECT_EQ(DT.idom(Exit), Head);
  EXPECT_TRUE(DT.dominates(Head, Exit));
}

TEST(LoopInfoTest, SimpleLoop) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel loopy ()
{
  .reg .u32 %i;
  .reg .pred %p;
entry:
  mov.u32 %i, 0;
  bra head;
head:
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, 10;
  @%p bra head, exit;
exit:
  ret;
}
)");
  CFG G(K);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  uint32_t Head = K.findBlock("head");
  const Loop *L = LI.loopWithHeader(Head);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Blocks, (std::vector<uint32_t>{Head}));
  EXPECT_EQ(L->BackEdgeSources, (std::vector<uint32_t>{Head}));
  EXPECT_TRUE(LI.isInLoop(Head));
  EXPECT_FALSE(LI.isInLoop(K.findBlock("entry")));
  EXPECT_FALSE(LI.isInLoop(K.findBlock("exit")));
}

TEST(LoopInfoTest, LoopWithBody) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel loopy ()
{
  .reg .u32 %i, %x;
  .reg .pred %p, %q;
entry:
  mov.u32 %i, 0;
  bra head;
head:
  and.u32 %x, %i, 1;
  setp.eq.u32 %q, %x, 0;
  @%q bra even, odd;
even:
  add.u32 %i, %i, 1;
  bra latch;
odd:
  add.u32 %i, %i, 3;
  bra latch;
latch:
  setp.lt.u32 %p, %i, 50;
  @%p bra head, exit;
exit:
  ret;
}
)");
  CFG G(K);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, K.findBlock("head"));
  EXPECT_EQ(L.Blocks.size(), 4u); // head, even, odd, latch
  EXPECT_FALSE(LI.isInLoop(K.findBlock("exit")));
}

TEST(LoopInfoTest, NoLoops) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, DiamondSrc);
  CFG G(K);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  EXPECT_TRUE(LI.loops().empty());
}

TEST(LivenessTest, AcrossBranch) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, DiamondSrc);
  CFG G(K);
  Liveness Live(K, G);
  RegId B = K.findReg("b");
  RegId A = K.findReg("a");
  uint32_t Join = K.findBlock("join");
  // %b is written on both sides and read at the join.
  EXPECT_TRUE(Live.liveIn(Join).test(B.Index));
  EXPECT_TRUE(Live.liveOut(K.findBlock("left")).test(B.Index));
  // %a is dead after the entry block.
  EXPECT_FALSE(Live.liveIn(Join).test(A.Index));
  // Nothing is live out of the exit block.
  EXPECT_EQ(Live.liveOut(Join).count(), 0u);
}

TEST(LivenessTest, GuardedDefDoesNotKill) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel g (.param .u64 p)
{
  .reg .u32 %x, %t;
  .reg .u64 %addr;
  .reg .pred %c;
entry:
  mov.u32 %x, 7;
  mov.u32 %t, %tid.x;
  setp.eq.u32 %c, %t, 0;
  bra mid;
mid:
  @%c mov.u32 %x, 9;
  bra out;
out:
  ld.param.u64 %addr, [p];
  st.global.u32 [%addr], %x;
  ret;
}
)");
  CFG G(K);
  Liveness Live(K, G);
  RegId X = K.findReg("x");
  // The guarded def in 'mid' may not execute, so the entry def of %x must
  // remain live into 'mid'.
  EXPECT_TRUE(Live.liveIn(K.findBlock("mid")).test(X.Index));
}

TEST(LivenessTest, LiveBeforeScansBackwards) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, DiamondSrc);
  CFG G(K);
  Liveness Live(K, G);
  RegId A = K.findReg("a");
  // Before instruction 1 (setp) of the entry block, %a is live; before
  // instruction 0 (its def), it is not.
  EXPECT_TRUE(Live.liveBefore(K, 0, 1).test(A.Index));
  EXPECT_FALSE(Live.liveBefore(K, 0, 0).test(A.Index));
}

TEST(VarianceTest, TidRootsPropagate) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel v (.param .u64 p, .param .u32 n)
{
  .reg .u32 %t, %derived, %uniform, %alsou;
entry:
  mov.u32 %t, %tid.x;
  add.u32 %derived, %t, 1;
  ld.param.u32 %uniform, [n];
  mul.u32 %alsou, %uniform, 3;
  ret;
}
)");
  VarianceAnalysis VA(K);
  EXPECT_TRUE(VA.isVariant(K.findReg("t")));
  EXPECT_TRUE(VA.isVariant(K.findReg("derived")));
  EXPECT_FALSE(VA.isVariant(K.findReg("uniform")));
  EXPECT_FALSE(VA.isVariant(K.findReg("alsou")));
}

TEST(VarianceTest, GlobalLoadIsVariant) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel v (.param .u64 p)
{
  .reg .u32 %fromglobal;
  .reg .u64 %addr;
entry:
  ld.param.u64 %addr, [p];
  ld.global.u32 %fromglobal, [%addr];
  ret;
}
)");
  VarianceAnalysis VA(K);
  EXPECT_FALSE(VA.isVariant(K.findReg("addr")));     // param load: uniform
  EXPECT_TRUE(VA.isVariant(K.findReg("fromglobal"))); // global load: variant
}

TEST(VarianceTest, TidYZUniformOption) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel v ()
{
  .reg .u32 %y, %x;
entry:
  mov.u32 %y, %tid.y;
  mov.u32 %x, %tid.x;
  ret;
}
)");
  VarianceAnalysis Plain(K);
  EXPECT_TRUE(Plain.isVariant(K.findReg("y")));
  VarianceOptions VO;
  VO.TidYZUniform = true;
  VarianceAnalysis RowAligned(K, VO);
  EXPECT_FALSE(RowAligned.isVariant(K.findReg("y")));
  EXPECT_TRUE(RowAligned.isVariant(K.findReg("x"))); // x always variant
}

TEST(VarianceTest, ExtraRootsSeedTheFixedPoint) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel v ()
{
  .reg .u32 %i, %dep;
entry:
  mov.u32 %i, 0;
  add.u32 %dep, %i, 1;
  ret;
}
)");
  BitSet Roots(K.Regs.size());
  Roots.set(K.findReg("i").Index);
  VarianceOptions VO;
  VO.ExtraRoots = &Roots;
  VarianceAnalysis VA(K, VO);
  EXPECT_TRUE(VA.isVariant(K.findReg("i")));
  EXPECT_TRUE(VA.isVariant(K.findReg("dep")));
}

TEST(VarianceTest, InvariantInstructionPredicate) {
  std::unique_ptr<Module> M;
  const Kernel &K = parseK(M, R"(
.kernel v (.param .u32 n)
{
  .reg .u32 %u, %t;
entry:
  ld.param.u32 %u, [n];
  mov.u32 %t, %tid.x;
  ret;
}
)");
  VarianceAnalysis VA(K);
  const Instruction &ParamLd = K.Blocks[0].Insts[0];
  const Instruction &TidMov = K.Blocks[0].Insts[1];
  EXPECT_TRUE(VA.isInvariantInstruction(ParamLd));
  EXPECT_FALSE(VA.isInvariantInstruction(TidMov));
}

} // namespace
