//===- tests/speccache_test.cpp - Specialization service tests ------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Covers both halves of the SpecializationService: the persistent artifact
/// store (round-trip fidelity, warm-process loads without compiling,
/// corruption degrading to a recompile) and the online warp-width autotuner
/// (convergence to the best fixed width, profile persistence, bit-identical
/// results under WidthPolicy::Auto).
///
//===----------------------------------------------------------------------===//

#include "simtvec/core/SpecializationService.h"
#include "simtvec/core/TranslationCache.h"
#include "simtvec/ir/Printer.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/runtime/Runtime.h"
#include "simtvec/support/Serialize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

using namespace simtvec;
namespace fs = std::filesystem;

namespace {

/// Streaming kernel: out[gid] = gid * 3. Uniform control flow, exact
/// integer results.
const char *ScaleSrc = R"(
.kernel scale3 (.param .u64 out, .param .u32 n)
{
  .reg .u32 %gid, %n, %v;
  .reg .u64 %a, %b, %o;
  .reg .pred %p;
entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %n, [n];
  setp.lt.u32 %p, %gid, %n;
  @%p bra work, done;
work:
  mul.u32 %v, %gid, 3;
  ld.param.u64 %a, [out];
  cvt.u64.u32 %o, %gid;
  shl.u64 %o, %o, 2;
  add.u64 %b, %a, %o;
  st.global.u32 [%b], %v;
  bra done;
done:
  ret;
}
)";

/// Divergence-heavy kernel: per-thread loop whose trip count is a hash of
/// the thread id (same shape as the LoopTrip workload).
const char *DivSrc = R"(
.kernel divloop (.param .u64 out, .param .u32 n)
{
  .reg .u32 %gid, %n, %h, %trips, %i, %acc;
  .reg .u64 %addr, %base, %off;
  .reg .pred %p, %pn;
entry:
  mov.u32 %gid, %tid.x;
  mad.u32 %gid, %ntid.x, %ctaid.x, %gid;
  ld.param.u32 %n, [n];
  setp.lt.u32 %pn, %gid, %n;
  @%pn bra work, done;
work:
  mov.u32 %h, %gid;
  mul.u32 %h, %h, 2654435761;
  shr.u32 %trips, %h, 24;
  add.u32 %trips, %trips, 1;
  mov.u32 %i, 0;
  mov.u32 %acc, %gid;
  bra loop;
loop:
  mul.u32 %acc, %acc, 1664525;
  add.u32 %acc, %acc, 1013904223;
  add.u32 %i, %i, 1;
  setp.lt.u32 %p, %i, %trips;
  @%p bra loop, store;
store:
  ld.param.u64 %base, [out];
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %addr, %base, %off;
  st.global.u32 [%addr], %acc;
  bra done;
done:
  ret;
}
)";

/// Fresh per-test cache directory under the gtest temp root.
std::string freshCacheDir(const char *Tag) {
  fs::path P = fs::path(::testing::TempDir()) / (std::string("svc_") + Tag);
  fs::remove_all(P);
  fs::create_directories(P);
  return P.string();
}

std::vector<std::string> artifactFiles(const std::string &Dir) {
  std::vector<std::string> Files;
  for (const auto &DE : fs::directory_iterator(Dir))
    if (DE.path().extension() == SpecializationService::ArtifactExt)
      Files.push_back(DE.path().string());
  return Files;
}

struct RunResult {
  LaunchStats Stats;
  std::vector<uint32_t> Out;
  SpecializationService::Stats Disk;
};

/// Compiles \p Src into a fresh Program (its own TranslationCache and
/// SpecializationService) and launches \p Kernel once over \p N threads.
RunResult runOnce(const char *Src, const std::string &Kernel, uint32_t N,
                  const SpecializationOptions &Spec,
                  const LaunchOptions &Options) {
  Device Dev;
  auto Prog = Program::compile(Src, MachineModel(), Spec).take();
  uint64_t DOut = Dev.allocArray<uint32_t>(N);
  Params P;
  P.u64(DOut).u32(N);
  RunResult R;
  R.Stats =
      Prog->launch(Dev, Kernel, {N / 64, 1, 1}, {64, 1, 1}, P, Options).take();
  R.Out = Dev.download<uint32_t>(DOut, N);
  R.Disk = Prog->specialization().stats();
  return R;
}

//===----------------------------------------------------------------------===
// Artifact serialization
//===----------------------------------------------------------------------===

TEST(SpecCache, SpecializedKernelSerializationRoundTrips) {
  auto M = parseModule(DivSrc).take();
  MachineModel Machine;
  TranslationCache TC(*M, Machine);
  TranslationCache::Key K;
  K.KernelName = "divloop";
  K.WarpSize = 4;
  auto Exec = TC.get(K).take();

  ByteWriter W;
  serializeKernel(W, Exec->kernel());
  ByteReader R(W.bytes());
  Kernel Out;
  ASSERT_TRUE(deserializeKernel(R, Out));
  EXPECT_TRUE(R.exhausted());

  // Textual identity implies every structural field survived, and the
  // rebuild must land on the same decoded layout the original produced.
  EXPECT_EQ(printKernel(Exec->kernel()), printKernel(Out));
  auto Rebuilt = KernelExec::build(std::make_unique<Kernel>(Out), Machine,
                                   K.Superinstructions);
  ASSERT_TRUE(Rebuilt);
  EXPECT_EQ(Rebuilt->layoutFingerprint(), Exec->layoutFingerprint());
}

TEST(SpecCache, TruncatedPayloadFailsToDecode) {
  auto M = parseModule(ScaleSrc).take();
  ByteWriter W;
  serializeKernel(W, *M->findKernel("scale3"));
  for (size_t Cut : {W.size() / 4, W.size() / 2, W.size() - 1}) {
    ByteReader R(W.bytes().data(), Cut);
    Kernel Out;
    EXPECT_FALSE(deserializeKernel(R, Out) && R.exhausted())
        << "decoded from a " << Cut << "-byte prefix";
  }
}

//===----------------------------------------------------------------------===
// Persistent artifact cache
//===----------------------------------------------------------------------===

TEST(SpecCache, WarmProcessLoadsWithoutCompiling) {
  SpecializationOptions Spec;
  Spec.CacheDir = freshCacheDir("warm");
  LaunchOptions Options;
  Options.MaxWarpSize = 4;

  // Cold: nothing on disk, so the launch compiles and publishes every
  // specialization it needs (a width-4 launch also builds the narrower
  // tail-warp variants).
  RunResult Cold = runOnce(DivSrc, "divloop", 2048, Spec, Options);
  EXPECT_EQ(Cold.Disk.DiskHits, 0u);
  EXPECT_GE(Cold.Disk.DiskMisses, 1u);
  EXPECT_EQ(Cold.Disk.DiskWrites, Cold.Disk.DiskMisses);
  EXPECT_EQ(artifactFiles(Spec.CacheDir).size(), Cold.Disk.DiskWrites);

  // Warm: a fresh Program (fresh in-memory cache, simulating a new process)
  // must resolve every key from disk without compiling; a disk-resolved
  // miss never writes back.
  RunResult Warm = runOnce(DivSrc, "divloop", 2048, Spec, Options);
  EXPECT_EQ(Warm.Disk.DiskHits, Cold.Disk.DiskMisses);
  EXPECT_EQ(Warm.Disk.DiskMisses, 0u);
  EXPECT_EQ(Warm.Disk.DiskWrites, 0u);

  // The disk-loaded executable is bit-identical to the fresh compile:
  // same results, same modeled statistics.
  EXPECT_EQ(Cold.Out, Warm.Out);
  EXPECT_EQ(Cold.Stats.Counters.InstsExecuted, Warm.Stats.Counters.InstsExecuted);
  EXPECT_EQ(Cold.Stats.Counters.totalCycles(), Warm.Stats.Counters.totalCycles());
  EXPECT_EQ(Cold.Stats.WarpEntries, Warm.Stats.WarpEntries);
  EXPECT_EQ(Cold.Stats.MaxWorkerCycles, Warm.Stats.MaxWorkerCycles);
}

TEST(SpecCache, DistinctKeysGetDistinctArtifacts) {
  SpecializationOptions Spec;
  Spec.CacheDir = freshCacheDir("keys");
  for (uint32_t W : {1u, 2u, 4u, 8u}) {
    LaunchOptions Options;
    Options.MaxWarpSize = W;
    runOnce(ScaleSrc, "scale3", 1024, Spec, Options);
  }
  EXPECT_EQ(artifactFiles(Spec.CacheDir).size(), 4u);
}

TEST(SpecCache, CorruptArtifactsDegradeToRecompile) {
  SpecializationOptions Spec;
  Spec.CacheDir = freshCacheDir("corrupt");
  LaunchOptions Options;
  Options.MaxWarpSize = 4;

  std::vector<uint32_t> Expected;
  {
    RunResult Seed = runOnce(DivSrc, "divloop", 1024, Spec, Options);
    Expected = Seed.Out;
  }
  auto Files = artifactFiles(Spec.CacheDir);
  ASSERT_GE(Files.size(), 1u);
  const size_t NumArtifacts = Files.size();
  std::sort(Files.begin(), Files.end());
  const std::string &Path = Files[0];

  auto ReadAll = [&](const std::string &F) {
    std::ifstream In(F, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  };
  auto WriteAll = [&](const std::string &F, const std::vector<char> &B) {
    std::ofstream Out(F, std::ios::binary | std::ios::trunc);
    Out.write(B.data(), static_cast<std::streamsize>(B.size()));
  };
  const std::vector<char> Good = ReadAll(Path);
  ASSERT_GT(Good.size(), 64u);

  auto Corrupt = [&](const char *What, auto &&Mutate) {
    SCOPED_TRACE(What);
    std::vector<char> Bad = Good;
    Mutate(Bad);
    WriteAll(Path, Bad);
    // The corrupt entry must degrade to a plain miss: the launch recompiles
    // just that specialization, produces correct results, and re-publishes
    // a clean artifact; the untouched entries still hit.
    RunResult R = runOnce(DivSrc, "divloop", 1024, Spec, Options);
    EXPECT_EQ(R.Disk.DiskHits, NumArtifacts - 1);
    EXPECT_EQ(R.Disk.DiskMisses, 1u);
    EXPECT_EQ(R.Disk.DiskWrites, 1u);
    EXPECT_EQ(R.Out, Expected);
    // The rewrite repaired the store: the next fresh Program hits fully.
    RunResult Again = runOnce(DivSrc, "divloop", 1024, Spec, Options);
    EXPECT_EQ(Again.Disk.DiskHits, NumArtifacts);
  };

  Corrupt("truncate", [](std::vector<char> &B) { B.resize(B.size() / 2); });
  Corrupt("bit-flip in payload",
          [](std::vector<char> &B) { B[B.size() - 8] ^= 0x40; });
  Corrupt("bad magic", [](std::vector<char> &B) {
    B[0] = 'X';
    B[1] = 'X';
  });
  Corrupt("header version bump", [](std::vector<char> &B) { B[4] ^= 0x01; });
}

TEST(SpecCache, InspectReportsHeaderAndHealth) {
  SpecializationOptions Spec;
  Spec.CacheDir = freshCacheDir("inspect");
  LaunchOptions Options;
  Options.MaxWarpSize = 2;
  runOnce(ScaleSrc, "scale3", 512, Spec, Options);

  auto Files = artifactFiles(Spec.CacheDir);
  ASSERT_GE(Files.size(), 1u);
  bool SawWidth2 = false;
  for (const std::string &F : Files) {
    auto Info = SpecializationService::inspectArtifact(F);
    ASSERT_TRUE(static_cast<bool>(Info)) << F << ": "
                                         << Info.status().message();
    EXPECT_EQ(Info->Version, SpecializationService::FormatVersion);
    EXPECT_TRUE(Info->CrcValid);
    EXPECT_TRUE(Info->Decodes);
    // The vectorizer renames its output "<source>$w<width>...".
    EXPECT_EQ(Info->KernelName.rfind("scale3", 0), 0u) << Info->KernelName;
    SawWidth2 |= Info->WarpSize == 2;
  }
  EXPECT_TRUE(SawWidth2);
}

//===----------------------------------------------------------------------===
// Online warp-width autotuner
//===----------------------------------------------------------------------===

/// Modeled cycles for one fixed-width launch of (Src, Kernel).
uint64_t fixedWidthCycles(const char *Src, const std::string &Kernel,
                          uint32_t N, uint32_t Width) {
  LaunchOptions Options;
  Options.MaxWarpSize = Width;
  return runOnce(Src, Kernel, N, SpecializationOptions(), Options)
      .Stats.MaxWorkerCycles;
}

void expectAutoConverges(const char *Src, const std::string &Kernel,
                         uint32_t N, const std::string &Dir) {
  SpecializationOptions Spec;
  Spec.CacheDir = Dir;

  uint64_t Best = UINT64_MAX;
  for (uint32_t W : Spec.Widths)
    Best = std::min(Best, fixedWidthCycles(Src, Kernel, N, W));

  Device Dev;
  auto Prog = Program::compile(Src, MachineModel(), Spec).take();
  uint64_t DOut = Dev.allocArray<uint32_t>(N);
  Params P;
  P.u64(DOut).u32(N);
  LaunchOptions Options;
  Options.Policy = LaunchOptions::WidthPolicy::Auto;

  // Exploration needs ExploreSamples launches per candidate; run a couple
  // extra so the committed width is exercised too.
  const unsigned Launches =
      static_cast<unsigned>(Spec.Widths.size()) * Spec.ExploreSamples + 2;
  LaunchStats Last{};
  for (unsigned I = 0; I < Launches; ++I)
    Last = Prog->launch(Dev, Kernel, {N / 64, 1, 1}, {64, 1, 1}, P, Options)
               .take();

  uint32_t Committed = Prog->specialization().committedWidth(Kernel);
  ASSERT_NE(Committed, 0u) << "autotuner did not commit";
  // Modeled launches are deterministic, so the committed width's cost must
  // be within 10% of the best fixed width (in practice it is the argmin).
  EXPECT_LE(static_cast<double>(Last.MaxWorkerCycles),
            1.10 * static_cast<double>(Best))
      << "committed width " << Committed << " costs " << Last.MaxWorkerCycles
      << " cycles vs best fixed " << Best;

  // The learned profile persists: a fresh Program over the same cache
  // directory starts out already committed to the same width.
  auto Prog2 = Program::compile(Src, MachineModel(), Spec).take();
  EXPECT_EQ(Prog2->specialization().committedWidth(Kernel), Committed);
}

TEST(SpecCache, AutotunerConvergesOnStreamingKernel) {
  expectAutoConverges(ScaleSrc, "scale3", 4096, freshCacheDir("tune_stream"));
}

TEST(SpecCache, AutotunerConvergesOnDivergentKernel) {
  expectAutoConverges(DivSrc, "divloop", 4096, freshCacheDir("tune_div"));
}

TEST(SpecCache, AutoResultsBitIdenticalToEveryFixedWidth) {
  const uint32_t N = 1024;
  std::vector<uint32_t> Ref;
  for (uint32_t W : {1u, 2u, 4u, 8u}) {
    LaunchOptions Options;
    Options.MaxWarpSize = W;
    RunResult R = runOnce(DivSrc, "divloop", N, SpecializationOptions(),
                          Options);
    if (Ref.empty())
      Ref = R.Out;
    EXPECT_EQ(R.Out, Ref) << "width " << W;
  }

  // Auto explores every width across these launches; each one must match.
  Device Dev;
  auto Prog = Program::compile(DivSrc, MachineModel(), SpecializationOptions())
                  .take();
  uint64_t DOut = Dev.allocArray<uint32_t>(N);
  Params P;
  P.u64(DOut).u32(N);
  LaunchOptions Options;
  Options.Policy = LaunchOptions::WidthPolicy::Auto;
  for (unsigned I = 0; I < 10; ++I) {
    Dev.memset(DOut, 0, N * sizeof(uint32_t));
    ASSERT_TRUE(static_cast<bool>(
        Prog->launch(Dev, "divloop", {N / 64, 1, 1}, {64, 1, 1}, P, Options)));
    EXPECT_EQ(Dev.download<uint32_t>(DOut, N), Ref) << "auto launch " << I;
  }
}

TEST(SpecCache, AutoPolicyWorksOnStreams) {
  // Queued bursts resolve the width at execution time, so a whole burst
  // enqueued before any feedback still explores and converges.
  const uint32_t N = 1024;
  SpecializationOptions Spec;
  Spec.CacheDir = freshCacheDir("tune_stream_async");
  Device Dev;
  auto Prog = Program::compile(ScaleSrc, MachineModel(), Spec).take();
  uint64_t DOut = Dev.allocArray<uint32_t>(N);
  Params P;
  P.u64(DOut).u32(N);
  LaunchOptions Options;
  Options.Policy = LaunchOptions::WidthPolicy::Auto;

  Stream S;
  for (unsigned I = 0; I < 12; ++I)
    Prog->launchAsync(S, Dev, "scale3", {N / 64, 1, 1}, {64, 1, 1}, P,
                      Options);
  ASSERT_FALSE(S.synchronize().isError());
  EXPECT_NE(Prog->specialization().committedWidth("scale3"), 0u);

  std::vector<uint32_t> Out = Dev.download<uint32_t>(DOut, N);
  for (uint32_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], I * 3) << "element " << I;
}

} // namespace
