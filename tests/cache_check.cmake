# End-to-end persistence smoke: runs the wall-clock bench twice against a
# fresh SIMTVEC_CACHE_DIR. The cold run must populate the artifact store;
# the warm run must resolve every translation from disk (zero compiles) and
# reproduce bit-identical modeled-execution metrics. Corrupt entries must
# degrade to recompiles, and cache_tool must agree with the store's health
# at every step.

set(CACHE_DIR ${OUT}.cache)
file(REMOVE_RECURSE ${CACHE_DIR})
file(MAKE_DIRECTORY ${CACHE_DIR})

# --- cold run: compiles, publishes artifacts -------------------------------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_CACHE_DIR=${CACHE_DIR}
    ${WALLCLOCK} --metrics ${OUT} 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE cold)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold wallclock run exited with ${rc}")
endif()
if(NOT cold MATCHES "tc\\.compile +[1-9]")
  message(FATAL_ERROR "cold run reported no compiles:\n${cold}")
endif()
if(NOT cold MATCHES "tc\\.disk_write +[1-9]")
  message(FATAL_ERROR "cold run wrote no artifacts:\n${cold}")
endif()

# --- warm run: every translation resolves from disk ------------------------
execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_CACHE_DIR=${CACHE_DIR}
    ${WALLCLOCK} --metrics ${OUT}.warm 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE warm)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm wallclock run exited with ${rc}")
endif()
if(NOT warm MATCHES "tc\\.compile +0[\r\n]")
  message(FATAL_ERROR "warm run still compiled (expected tc.compile 0):\n${warm}")
endif()
if(NOT warm MATCHES "tc\\.disk_hit +[1-9]")
  message(FATAL_ERROR "warm run had no disk hits:\n${warm}")
endif()
if(NOT warm MATCHES "tc\\.disk_miss +0[\r\n]")
  message(FATAL_ERROR "warm run missed on disk:\n${warm}")
endif()

# Disk-loaded executables must be bit-identical to fresh compiles: every
# modeled-execution counter agrees between the two runs.
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" cold_em "${cold}")
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" warm_em "${warm}")
if(NOT cold_em)
  message(FATAL_ERROR "cold run reported no em.* metrics:\n${cold}")
endif()
if(NOT "${cold_em}" STREQUAL "${warm_em}")
  message(FATAL_ERROR "modeled metrics differ between cold and warm runs:\n"
    "cold: ${cold_em}\nwarm: ${warm_em}")
endif()

# --- cache_tool agrees the populated store is clean -------------------------
execute_process(COMMAND ${CACHE_TOOL} --dir ${CACHE_DIR} verify
  RESULT_VARIABLE rc OUTPUT_VARIABLE vout)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cache_tool verify failed on a clean store:\n${vout}")
endif()

# --- corruption degrades to a recompile -------------------------------------
# CMake cannot write arbitrary binary, so corrupt two artifacts the ways it
# can: overwrite one with garbage (bad magic) and append trailing bytes to
# another (payload size mismatch). Bit-flip/truncate cases live in the
# SpecCache gtest suite.
file(GLOB artifacts ${CACHE_DIR}/*.svca)
list(LENGTH artifacts n_artifacts)
if(n_artifacts LESS 2)
  message(FATAL_ERROR "expected >= 2 artifacts, found ${n_artifacts}")
endif()
list(GET artifacts 0 victim_a)
list(GET artifacts 1 victim_b)
file(WRITE ${victim_a} "this is not an artifact")
file(APPEND ${victim_b} "trailing garbage")

execute_process(COMMAND ${CACHE_TOOL} --dir ${CACHE_DIR} verify
  RESULT_VARIABLE rc OUTPUT_VARIABLE vout)
if(rc EQUAL 0)
  message(FATAL_ERROR "cache_tool verify passed a corrupted store:\n${vout}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E env SIMTVEC_CACHE_DIR=${CACHE_DIR}
    ${WALLCLOCK} --metrics ${OUT}.corrupt 1 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE repair)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run over corrupted store exited with ${rc}")
endif()
if(NOT repair MATCHES "tc\\.compile +[1-9]")
  message(FATAL_ERROR "corrupted entries were not recompiled:\n${repair}")
endif()
if(NOT repair MATCHES "tc\\.disk_write +[1-9]")
  message(FATAL_ERROR "recompile did not re-publish artifacts:\n${repair}")
endif()
string(REGEX MATCHALL "em\\.[a-z_.0-9]+ +[0-9]+" repair_em "${repair}")
if(NOT "${cold_em}" STREQUAL "${repair_em}")
  message(FATAL_ERROR "metrics diverged after corruption recovery:\n"
    "cold: ${cold_em}\nrepair: ${repair_em}")
endif()

# The rewrite repaired the store in place.
execute_process(COMMAND ${CACHE_TOOL} --dir ${CACHE_DIR} verify
  RESULT_VARIABLE rc OUTPUT_VARIABLE vout)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "store still corrupt after repair run:\n${vout}")
endif()
