//===- tests/ShapeKernelSrc.h - Shared exec-shape coverage kernel ---------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// One kernel with a guarded (@%p / @!%p) form of every source-expressible
/// execution shape: Mov, Binary, Mad, Unary, Setp, Selp, Cvt, Ld, St,
/// AtomAdd (global and shared), Membar, BarSync, Bra, Ret. The vector-only
/// shapes (Iota, Broadcast, Insert/ExtractElement, VoteSum), the Switch
/// dispatchers and the yield intrinsics (Spill, Restore, SetRPoint,
/// SetRStatus, Yield) are introduced by vectorization and yield-on-diverge
/// lowering — the divergent guarded branches below force them. Adjacent
/// same-guard arithmetic, load and store records additionally exercise the
/// fused superinstruction forms (FusedCmpSel, FusedKernelRun, FusedLdRun,
/// FusedStRun, spill/restore runs) when Superinstructions is on.
///
/// Shared by shapes_test.cpp (engine-differential runs) and
/// streams_test.cpp (concurrent-stream equivalence runs): it touches every
/// engine path, so "concurrent streams match serial execution" on this
/// kernel is a strong statement. The divergence-control logic is a
/// function of %tid.x so every CTA produces the same warp-formation
/// shapes, but the global stores are indexed by the *global* thread id —
/// CTAs write disjoint addresses, keeping multi-worker launches free of
/// cross-CTA write races (the out buffer needs 64 + 3*256 = 832 bytes for
/// the 64-thread {2,1,1}x{32,1,1} launch the tests use).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTVEC_TESTS_SHAPEKERNELSRC_H
#define SIMTVEC_TESTS_SHAPEKERNELSRC_H

inline const char *ShapeCoverageSrc = R"(
.kernel shapes (.param .u64 out, .param .u64 acc)
{
  .shared .b8 sm[256];
  .reg .u32 %t, %gid, %v, %w, %x, %y, %z, %old, %sel;
  .reg .u64 %a, %b, %off, %sa;
  .reg .f32 %f, %g;
  .reg .s32 %si;
  .reg .pred %p, %q, %np;
entry:
  mov.u32 %t, %tid.x;
  and.u32 %x, %t, 3;
  setp.lt.u32 %p, %x, 2;
  @%p setp.eq.u32 %q, %x, 0;
  @!%p setp.eq.u32 %q, %x, 3;
  mov.u32 %v, 7;
  @%p add.u32 %v, %v, %t;
  @!%p sub.u32 %v, %v, 1;
  @%p mad.u32 %w, %v, 3, %t;
  @!%p mov.u32 %w, 11;
  @%p min.u32 %y, %v, %w;
  @!%p max.u32 %y, %v, %w;
  not.pred %np, %q;
  @%p selp.u32 %z, %v, %w, %q;
  @!%p selp.u32 %z, %w, %y, %np;
  cvt.u64.u32 %off, %t;
  @%p cvt.f32.u32 %f, %v;
  @!%p cvt.f32.u32 %f, %w;
  sqrt.f32 %g, %f;
  @%q abs.f32 %g, %g;
  cvt.s32.f32 %si, %g;
  ld.param.u64 %a, [out];
  ld.param.u64 %b, [acc];
  @%p ld.global.u32 %x, [%a];
  @%p ld.global.u32 %y, [%a+4];
  @%p atom.global.add.u32 %old, [%b], 1;
  @!%p atom.global.add.u32 %old, [%b+4], 2;
  membar;
  shl.u64 %sa, %off, 2;
  @%p st.shared.u32 [%sa], %v;
  @!%p st.shared.u32 [%sa], %w;
  bar.sync;
  ld.shared.u32 %sel, [%sa];
  atom.shared.add.u32 %old, [%sa], 1;
  and.u32 %z, %t, 3;
  setp.eq.u32 %np, %z, 0;
  @%np bra c0, n0;
c0:
  mul.u32 %v, %v, 2;
  bra join;
n0:
  setp.eq.u32 %np, %z, 1;
  @%np bra c1, c2;
c1:
  mul.u32 %v, %v, 3;
  bra join;
c2:
  @%q bra c2a, c2b;
c2a:
  add.u32 %v, %v, 100;
  bra join;
c2b:
  xor.u32 %v, %v, 1023;
  bra join;
join:
  add.u32 %v, %v, %w;
  add.u32 %v, %v, %x;
  add.u32 %v, %v, %y;
  add.u32 %v, %v, %sel;
  mad.u32 %gid, %ntid.x, %ctaid.x, %t;
  cvt.u64.u32 %off, %gid;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  @%p st.global.u32 [%a+64], %v;
  @!%p st.global.u32 [%a+64], %w;
  st.global.f32 [%a+320], %g;
  st.global.s32 [%a+576], %si;
  ret;
}
)";

#endif // SIMTVEC_TESTS_SHAPEKERNELSRC_H
