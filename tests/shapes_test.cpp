//===- tests/shapes_test.cpp - Evaluation-shape regression tests ----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Locks the reproduced evaluation shapes (EXPERIMENTS.md) into the test
/// suite: Table 1's throughput curve, Figure 6's per-class ordering and
/// slowdowns, Figure 7's warp-size dominance, Figure 8's liveness range,
/// Figure 9's cycle-breakdown classes and Figure 10's static+TIE gains.
/// These are deliberately loose bands — they must survive cost-model
/// retuning — but they fail if a change destroys a paper-level conclusion.
///
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"
#include "simtvec/workloads/Workloads.h"

#include "ShapeKernelSrc.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace simtvec;

namespace {

LaunchStats run(const char *Name, const LaunchOptions &O) {
  const Workload *W = findWorkload(Name);
  EXPECT_NE(W, nullptr);
  auto S = runWorkload(*W, 1, O);
  EXPECT_TRUE(static_cast<bool>(S)) << S.status().message();
  return S.take();
}

LaunchOptions ws(uint32_t MaxWarp) {
  LaunchOptions O;
  O.MaxWarpSize = MaxWarp;
  return O;
}

LaunchOptions staticTie() {
  LaunchOptions O;
  O.MaxWarpSize = 4;
  O.Formation = WarpFormation::Static;
  O.ThreadInvariantElim = true;
  return O;
}

double speedup(const LaunchStats &Base, const LaunchStats &Opt) {
  return Base.MaxWorkerCycles / Opt.MaxWorkerCycles;
}

//===----------------------------------------------------------------------===
// Table 1
//===----------------------------------------------------------------------===

TEST(ShapeTable1, ThroughputCurve) {
  double G1 = run("Throughput", ws(1)).gflops();
  double G2 = run("Throughput", ws(2)).gflops();
  double G4 = run("Throughput", ws(4)).gflops();
  double G8 = run("Throughput", ws(8)).gflops();
  // Paper: 25.0 / 47.9 / 97.1 / 37.0 on a ~108 GFLOP/s machine.
  EXPECT_NEAR(G1, 25.0, 5.0);
  EXPECT_NEAR(G2, 48.0, 8.0);
  EXPECT_GT(G4, 85.0); // ~90% of the 108.8 peak
  EXPECT_LT(G4, 108.8);
  // The warp-size-8 register-pressure collapse: well below ws4, and below
  // 2x scalar.
  EXPECT_LT(G8, 0.5 * G4);
  EXPECT_LT(G8, 2.0 * G1);
  EXPECT_GT(G8, G1); // but still above scalar, as in the paper
}

//===----------------------------------------------------------------------===
// Figure 6
//===----------------------------------------------------------------------===

TEST(ShapeFig6, ComputeUniformKernelsSpeedUpStrongly) {
  for (const char *Name : {"BlackScholes", "MonteCarlo", "Nbody", "cp"}) {
    LaunchStats Scalar = run(Name, ws(1));
    LaunchStats Vec = run(Name, ws(4));
    EXPECT_GT(speedup(Scalar, Vec), 1.6) << Name;
  }
}

TEST(ShapeFig6, UncorrelatedDivergenceSlowsDown) {
  // Paper: MersenneTwister and mri-q run slower with dynamic warp
  // formation.
  for (const char *Name : {"MersenneTwister", "mri-q", "mri-fhd"}) {
    LaunchStats Scalar = run(Name, ws(1));
    LaunchStats Vec = run(Name, ws(4));
    EXPECT_LT(speedup(Scalar, Vec), 1.0) << Name;
  }
}

TEST(ShapeFig6, MemoryBoundKernelsGainLittle) {
  for (const char *Name : {"VectorAdd", "Histogram64", "ScalarProd"}) {
    LaunchStats Scalar = run(Name, ws(1));
    LaunchStats Vec = run(Name, ws(4));
    double S = speedup(Scalar, Vec);
    EXPECT_GT(S, 0.9) << Name;
    EXPECT_LT(S, 1.7) << Name; // clearly below the compute-uniform tier
  }
}

TEST(ShapeFig6, WiderWarpsHelpConvergentKernels) {
  LaunchStats W1 = run("BlackScholes", ws(1));
  LaunchStats W2 = run("BlackScholes", ws(2));
  LaunchStats W4 = run("BlackScholes", ws(4));
  EXPECT_GT(speedup(W1, W2), 1.1);
  EXPECT_GT(speedup(W2, W4), 1.1);
}

//===----------------------------------------------------------------------===
// Figure 7
//===----------------------------------------------------------------------===

TEST(ShapeFig7, FullWarpsDominateConvergentKernels) {
  LaunchStats S = run("BlackScholes", ws(4));
  EXPECT_DOUBLE_EQ(S.avgWarpSize(), 4.0);
}

TEST(ShapeFig7, DivergentKernelsMixSmallerWarps) {
  LaunchStats S = run("Mandelbrot", ws(4));
  EXPECT_LT(S.avgWarpSize(), 4.0);
  EXPECT_GT(S.avgWarpSize(), 3.0); // still mostly full, as in the paper
  EXPECT_GT(S.EntriesByWidth.at(1) + S.EntriesByWidth.at(2), 0u);
}

//===----------------------------------------------------------------------===
// Figure 8
//===----------------------------------------------------------------------===

TEST(ShapeFig8, RestoredValuesStayBelowRegisterFile) {
  // Paper: 4.54 values on average, fewer than architectural registers.
  double Weighted = 0;
  uint64_t Entries = 0;
  for (const Workload &W : allWorkloads()) {
    LaunchStats S = run(W.Name, ws(4));
    Weighted += static_cast<double>(S.Counters.RestoredValues);
    Entries += S.ThreadEntries;
  }
  double Avg = Weighted / static_cast<double>(Entries);
  EXPECT_GT(Avg, 2.0);
  EXPECT_LT(Avg, 10.0);
}

//===----------------------------------------------------------------------===
// Figure 9
//===----------------------------------------------------------------------===

TEST(ShapeFig9, ComputeKernelsAreSubkernelBound) {
  for (const char *Name : {"Nbody", "cp", "Throughput"}) {
    LaunchStats S = run(Name, ws(4));
    EXPECT_GT(S.subkernelFraction(), 0.9) << Name;
  }
}

TEST(ShapeFig9, SynchronizationKernelsAreManagerBound) {
  for (const char *Name : {"BinomialOptions", "Scan", "FastWalshTransform"}) {
    LaunchStats S = run(Name, ws(4));
    EXPECT_GT(S.emFraction() + S.yieldFraction(), 0.5) << Name;
  }
}

//===----------------------------------------------------------------------===
// Figure 10 / §6.2
//===----------------------------------------------------------------------===

TEST(ShapeFig10, StaticTieHelpsTheIrregularCase) {
  // Paper: MersenneTwister gains most from constrained warp formation.
  LaunchStats Dyn = run("MersenneTwister", ws(4));
  LaunchStats Static = run("MersenneTwister", staticTie());
  EXPECT_GT(speedup(Dyn, Static), 1.05);
}

TEST(ShapeSec62, TieReducesStaticInstructionCount) {
  const Workload &W = *findWorkload("BlackScholes");
  auto Prog = compileWorkload(W);
  auto Plain =
      Prog->translationCache().get({W.KernelName, 4, false, false, false});
  auto Tie =
      Prog->translationCache().get({W.KernelName, 4, true, false, false});
  ASSERT_TRUE(static_cast<bool>(Plain));
  ASSERT_TRUE(static_cast<bool>(Tie));
  EXPECT_LT((*Tie)->kernel().instructionCount(),
            (*Plain)->kernel().instructionCount());
}

//===----------------------------------------------------------------------===
// Static warp formation groups stay aligned
//===----------------------------------------------------------------------===

TEST(ShapeStaticFormation, GroupsNeverSpanAlignmentBoundaries) {
  // A 6-thread CTA under static formation must enter as one warp of 4
  // (group 0) and one warp of 2 (group 1) — never as a warp mixing the
  // groups, which dynamic formation would happily build.
  const Workload &W = *findWorkload("VectorAdd");
  auto Prog = compileWorkload(W);
  auto Inst = W.Make(1);
  LaunchOptions O;
  O.MaxWarpSize = 4;
  O.Formation = WarpFormation::Static;
  O.Workers = 1;
  auto S = Prog->launch(*Inst->Dev, W.KernelName, {1, 1, 1}, {6, 1, 1},
                        Inst->Params, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  EXPECT_EQ(S->EntriesByWidth.at(4), 1u);
  EXPECT_EQ(S->EntriesByWidth.at(2), 1u);
}

//===----------------------------------------------------------------------===
// ExecShape differential coverage: guarded forms at widths 1/2/4/8
//===----------------------------------------------------------------------===

// The guarded-shape coverage kernel lives in ShapeKernelSrc.h (shared with
// streams_test.cpp, which launches it concurrently on multiple streams).

struct ShapeRun {
  LaunchStats Stats;
  std::vector<std::byte> Arena;
};

ShapeRun runShapeKernel(uint32_t Width, bool Reference, bool Fuse,
                        SimdMode Simd = SimdMode::Auto,
                        JitMode Jit = JitMode::Auto,
                        BranchMode Branch = BranchMode::Auto) {
  auto ProgOrErr = Program::compile(ShapeCoverageSrc);
  EXPECT_TRUE(static_cast<bool>(ProgOrErr)) << ProgOrErr.status().message();
  Device Dev(1 << 16);
  uint64_t Out = Dev.alloc(1024);
  uint64_t Acc = Dev.alloc(16);
  Dev.memset(Out, 0, 1024);
  Dev.memset(Acc, 0, 16);
  ParamBuilder Params;
  Params.u64(Out);
  Params.u64(Acc);
  LaunchOptions O;
  O.MaxWarpSize = Width;
  O.Workers = 1;
  O.UseOsThreads = false;
  O.UseReferenceInterp = Reference;
  O.Superinstructions = Fuse;
  O.Simd = Simd;
  O.Jit = Jit;
  O.Branch = Branch;
  auto StatsOrErr = (*ProgOrErr)->launch(Dev, "shapes", {2, 1, 1},
                                         {32, 1, 1}, Params, O);
  EXPECT_TRUE(static_cast<bool>(StatsOrErr)) << StatsOrErr.status().message();
  ShapeRun R;
  if (StatsOrErr)
    R.Stats = *StatsOrErr;
  R.Arena.assign(Dev.data(), Dev.data() + Dev.size());
  return R;
}

void expectShapeRunsMatch(const ShapeRun &Fast, const ShapeRun &Ref) {
  ASSERT_EQ(Fast.Arena.size(), Ref.Arena.size());
  EXPECT_EQ(0, std::memcmp(Fast.Arena.data(), Ref.Arena.data(),
                           Fast.Arena.size()));
  EXPECT_EQ(Fast.Stats.Counters.SubkernelCycles,
            Ref.Stats.Counters.SubkernelCycles);
  EXPECT_EQ(Fast.Stats.Counters.YieldCycles, Ref.Stats.Counters.YieldCycles);
  EXPECT_EQ(Fast.Stats.Counters.EMCycles, Ref.Stats.Counters.EMCycles);
  EXPECT_EQ(Fast.Stats.Counters.Flops, Ref.Stats.Counters.Flops);
  EXPECT_EQ(Fast.Stats.Counters.InstsExecuted,
            Ref.Stats.Counters.InstsExecuted);
  EXPECT_EQ(Fast.Stats.Counters.VectorInsts, Ref.Stats.Counters.VectorInsts);
  EXPECT_EQ(Fast.Stats.Counters.SpilledValues,
            Ref.Stats.Counters.SpilledValues);
  EXPECT_EQ(Fast.Stats.Counters.RestoredValues,
            Ref.Stats.Counters.RestoredValues);
  EXPECT_EQ(Fast.Stats.Counters.GlobalAccesses,
            Ref.Stats.Counters.GlobalAccesses);
  EXPECT_EQ(Fast.Stats.Counters.GlobalMisses,
            Ref.Stats.Counters.GlobalMisses);
  EXPECT_EQ(Fast.Stats.EntriesByWidth, Ref.Stats.EntriesByWidth);
  EXPECT_EQ(Fast.Stats.WarpEntries, Ref.Stats.WarpEntries);
  EXPECT_EQ(Fast.Stats.ThreadEntries, Ref.Stats.ThreadEntries);
  EXPECT_EQ(Fast.Stats.BranchYields, Ref.Stats.BranchYields);
  EXPECT_EQ(Fast.Stats.BarrierYields, Ref.Stats.BarrierYields);
  EXPECT_EQ(Fast.Stats.ExitYields, Ref.Stats.ExitYields);
}

TEST(ShapeExec, GuardedShapesMatchReferenceAtAllWidths) {
  for (uint32_t Width : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(Width));
    ShapeRun Ref = runShapeKernel(Width, /*Reference=*/true, /*Fuse=*/true);
    {
      SCOPED_TRACE("superinstructions on");
      expectShapeRunsMatch(runShapeKernel(Width, false, true), Ref);
    }
    {
      SCOPED_TRACE("superinstructions off");
      expectShapeRunsMatch(runShapeKernel(Width, false, false), Ref);
    }
  }
}

TEST(ShapeExec, SimdPathsMatchBitIdenticallyAtAllWidths) {
  // The PR-6 engine differential: forced-vector and forced-scalar lane
  // kernels must agree bit for bit on outputs AND modeled counters, at
  // every width, with and without superinstruction fusion, and both must
  // match the IR-walking reference engine.
  for (uint32_t Width : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(Width));
    for (bool Fuse : {true, false}) {
      SCOPED_TRACE(Fuse ? "superinstructions on" : "superinstructions off");
      ShapeRun Ref = runShapeKernel(Width, /*Reference=*/true, Fuse);
      ShapeRun Vec = runShapeKernel(Width, false, Fuse, SimdMode::Vector);
      ShapeRun Sca = runShapeKernel(Width, false, Fuse, SimdMode::Scalar);
      expectShapeRunsMatch(Vec, Sca);
      expectShapeRunsMatch(Vec, Ref);
    }
  }
}

TEST(ShapeExec, JitTiersMatchBitIdenticallyAtAllWidths) {
  // The native-tier differential: LaunchStats — outputs, modeled cycle
  // counters, entry histograms, yield counts — must be bit-identical
  // across all three Jit modes at every width. Forced native compiles
  // synchronously before the first warp entry; forced interp pins the
  // oracle; Auto is the production tiered path (whatever mix of tiers it
  // runs, the stats may not move). Without a host toolchain forced native
  // degrades to the interpreter and the comparison is trivially true.
  for (uint32_t Width : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(Width));
    ShapeRun Interp =
        runShapeKernel(Width, false, true, SimdMode::Auto, JitMode::Interp);
    ShapeRun Native =
        runShapeKernel(Width, false, true, SimdMode::Auto, JitMode::Native);
    ShapeRun Tiered =
        runShapeKernel(Width, false, true, SimdMode::Auto, JitMode::Auto);
    {
      SCOPED_TRACE("forced native vs forced interp");
      expectShapeRunsMatch(Native, Interp);
    }
    {
      SCOPED_TRACE("tiered auto vs forced interp");
      expectShapeRunsMatch(Tiered, Interp);
    }
  }
}

TEST(ShapeExec, BranchPoliciesMatchOutputsBitIdenticallyAtAllWidths) {
  // The divergence-reduction differential: forced-yield, forced-predicate
  // and forced-meld runs of the shape-coverage kernel (guarded atomics,
  // barriers, diamonds) must leave bit-identical device arenas at every
  // width. Only outputs are compared — moving the modeled counters is the
  // entire point of the optimization, so em.* identity is only required
  // *within* one policy (tests/meld_check.cmake holds that line).
  for (uint32_t Width : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(Width));
    ShapeRun Yield = runShapeKernel(Width, false, true, SimdMode::Auto,
                                    JitMode::Auto, BranchMode::Yield);
    ShapeRun Pred = runShapeKernel(Width, false, true, SimdMode::Auto,
                                   JitMode::Auto, BranchMode::Predicate);
    ShapeRun Meld = runShapeKernel(Width, false, true, SimdMode::Auto,
                                   JitMode::Auto, BranchMode::Meld);
    ASSERT_EQ(Pred.Arena.size(), Yield.Arena.size());
    EXPECT_EQ(0, std::memcmp(Pred.Arena.data(), Yield.Arena.data(),
                             Yield.Arena.size()))
        << "forced-predicate outputs differ from forced-yield";
    ASSERT_EQ(Meld.Arena.size(), Yield.Arena.size());
    EXPECT_EQ(0, std::memcmp(Meld.Arena.data(), Yield.Arena.data(),
                             Yield.Arena.size()))
        << "forced-meld outputs differ from forced-yield";
    // All policies retire every thread.
    EXPECT_EQ(Meld.Stats.ThreadEntries > 0, true);
  }
}

TEST(ShapeExec, HomogeneousRunCheckResolvesOnVectorPathOnly) {
  // The fused Ld/St-run fast path: the coverage kernel's replicated warp
  // loads/stores form homogeneous runs, so the vector-path translation must
  // carry a RunCheck on at least one fused memory head; the scalar-path
  // translation never does (the member loop is the oracle). The decoded
  // layout itself is path-independent.
  auto ProgOrErr = Program::compile(ShapeCoverageSrc);
  ASSERT_TRUE(static_cast<bool>(ProgOrErr)) << ProgOrErr.status().message();
  auto &TC = (*ProgOrErr)->translationCache();
  auto Vec =
      TC.get({"shapes", 4, false, false, false, true, SimdPath::Vector});
  auto Sca =
      TC.get({"shapes", 4, false, false, false, true, SimdPath::Scalar});
  ASSERT_TRUE(static_cast<bool>(Vec));
  ASSERT_TRUE(static_cast<bool>(Sca));
  EXPECT_EQ((*Vec)->simdPath(), SimdPath::Vector);
  EXPECT_EQ((*Sca)->simdPath(), SimdPath::Scalar);
  EXPECT_EQ((*Vec)->layoutFingerprint(), (*Sca)->layoutFingerprint());
  unsigned VecChecks = 0;
  for (const DecodedInst &D : (*Vec)->code())
    if (D.Shape == ExecShape::FusedLdRun || D.Shape == ExecShape::FusedStRun)
      VecChecks += D.Kern.RunCheck != nullptr;
  EXPECT_GT(VecChecks, 0u);
  for (const DecodedInst &D : (*Sca)->code())
    if (D.Shape == ExecShape::FusedLdRun ||
        D.Shape == ExecShape::FusedStRun) {
      EXPECT_EQ(D.Kern.RunCheck, nullptr);
    }
  // Same decoded stream otherwise: shapes and fusion lengths line up record
  // for record.
  ASSERT_EQ((*Vec)->code().size(), (*Sca)->code().size());
  for (size_t I = 0; I < (*Vec)->code().size(); ++I) {
    EXPECT_EQ((*Vec)->code()[I].Shape, (*Sca)->code()[I].Shape);
    EXPECT_EQ((*Vec)->code()[I].FuseLen, (*Sca)->code()[I].FuseLen);
  }
}

TEST(ShapeExec, FusedAndUnfusedStreamsDifferOnlyInShape) {
  // Sanity that the fusion pass actually fires on the coverage kernel: the
  // Superinstructions=off translation must contain no Fused* record, and
  // the on translation must contain at least one fused head of the
  // arithmetic, load and store run families.
  auto ProgOrErr = Program::compile(ShapeCoverageSrc);
  ASSERT_TRUE(static_cast<bool>(ProgOrErr)) << ProgOrErr.status().message();
  auto &TC = (*ProgOrErr)->translationCache();
  auto Fused = TC.get({"shapes", 4, false, false, false, true});
  auto Plain = TC.get({"shapes", 4, false, false, false, false});
  ASSERT_TRUE(static_cast<bool>(Fused));
  ASSERT_TRUE(static_cast<bool>(Plain));
  unsigned KernelRuns = 0, LdRuns = 0, StRuns = 0;
  for (const DecodedInst &D : (*Fused)->code()) {
    KernelRuns += D.Shape == ExecShape::FusedKernelRun;
    LdRuns += D.Shape == ExecShape::FusedLdRun;
    StRuns += D.Shape == ExecShape::FusedStRun;
  }
  EXPECT_GT(KernelRuns, 0u);
  EXPECT_GT(LdRuns, 0u);
  EXPECT_GT(StRuns, 0u);
  for (const DecodedInst &D : (*Plain)->code())
    EXPECT_EQ(D.FuseLen, 0u);
}

} // namespace
