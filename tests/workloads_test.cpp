//===- tests/workloads_test.cpp - Suite integration tests -----------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Every workload must validate against its golden reference under every
/// execution configuration: the scalar baseline, dynamic warp formation at
/// widths 2 and 4, and static formation with thread-invariant elimination.
/// This is the end-to-end proof that vectorization, yield-on-diverge and
/// TIE preserve kernel semantics.
///
//===----------------------------------------------------------------------===//

#include "simtvec/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

struct SuiteCase {
  std::string WorkloadName;
  std::string ConfigName;
  LaunchOptions Options;
};

std::vector<SuiteCase> makeCases() {
  std::vector<std::pair<std::string, LaunchOptions>> Configs;
  {
    LaunchOptions O;
    O.MaxWarpSize = 1;
    Configs.emplace_back("scalar", O);
  }
  {
    LaunchOptions O;
    O.MaxWarpSize = 2;
    Configs.emplace_back("dyn2", O);
  }
  {
    LaunchOptions O;
    O.MaxWarpSize = 4;
    Configs.emplace_back("dyn4", O);
  }
  {
    LaunchOptions O;
    O.MaxWarpSize = 4;
    O.Formation = WarpFormation::Static;
    Configs.emplace_back("static4", O);
  }
  {
    LaunchOptions O;
    O.MaxWarpSize = 4;
    O.Formation = WarpFormation::Static;
    O.ThreadInvariantElim = true;
    Configs.emplace_back("tie4", O);
  }
  {
    LaunchOptions O;
    O.MaxWarpSize = 4;
    O.UniformBranchOpt = true;
    Configs.emplace_back("ubo4", O);
  }
  {
    LaunchOptions O;
    O.MaxWarpSize = 4;
    O.UniformLoadOpt = true;
    Configs.emplace_back("ulo4", O);
  }

  std::vector<SuiteCase> Cases;
  for (const Workload &W : allWorkloads())
    for (const auto &[Name, Options] : Configs)
      Cases.push_back({W.Name, Name, Options});
  return Cases;
}

class WorkloadSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(WorkloadSuite, ValidatesAgainstReference) {
  const SuiteCase &C = GetParam();
  const Workload *W = findWorkload(C.WorkloadName);
  ASSERT_NE(W, nullptr);
  auto StatsOrErr = runWorkload(*W, /*Scale=*/1, C.Options);
  ASSERT_TRUE(static_cast<bool>(StatsOrErr))
      << StatsOrErr.status().message();
  EXPECT_GT(StatsOrErr->WarpEntries, 0u);
  EXPECT_GT(StatsOrErr->Counters.InstsExecuted, 0u);
  // Every launch must fully retire its threads.
  EXPECT_GT(StatsOrErr->ExitYields, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite, ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<SuiteCase> &Info) {
      std::string Name =
          Info.param.WorkloadName + "_" + Info.param.ConfigName;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(WorkloadRegistry, AllWorkloadsRegistered) {
  EXPECT_EQ(allWorkloads().size(), 25u); // PR 9 added Bfs and Spmv
}

TEST(WorkloadRegistry, NamesAreUnique) {
  const auto &All = allWorkloads();
  for (size_t I = 0; I < All.size(); ++I)
    for (size_t J = I + 1; J < All.size(); ++J)
      EXPECT_STRNE(All[I].Name, All[J].Name);
}

TEST(WorkloadRegistry, EveryClassRepresented) {
  bool Seen[4] = {};
  for (const Workload &W : allWorkloads())
    Seen[static_cast<int>(W.Class)] = true;
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

} // namespace
