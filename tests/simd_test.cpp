//===- tests/simd_test.cpp - Simd<T,W> and lane-kernel differentials ------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Three layers of coverage for the PR-6 SIMD engine path:
//  1. the Simd<T,W,Backend> value class itself, Array vs Native backend,
//     against plain scalar expressions (wrap arithmetic, masked shifts,
//     compare masks, bit-blend select, lane-word round trips) on edge
//     values (NaN, signed zero, infinities, INT_MIN, shift-by-width);
//  2. the resolved lane kernels: SimdPath::Vector vs SimdPath::Scalar vs
//     the generic eval* thunks, exhaustively over (op, kind, width) and an
//     edge-value operand pool, including the destination-aliases-source
//     contract and the fused CmpSel / run-address-check kernels;
//  3. the audited resolver-nullability policy: a combination has a lane
//     kernel on either path exactly when ScalarOps has a scalar thunk for
//     it, and unspecialized widths resolve to null on both paths.
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/ScalarOps.h"
#include "simtvec/support/Simd.h"
#include "simtvec/vm/ExecKernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

using namespace simtvec;

namespace {

constexpr unsigned Widths[] = {1, 2, 4, 8};
constexpr ScalarKind AllKinds[] = {ScalarKind::Pred, ScalarKind::U8,
                                   ScalarKind::S32,  ScalarKind::U32,
                                   ScalarKind::S64,  ScalarKind::U64,
                                   ScalarKind::F32,  ScalarKind::F64};

uint64_t f32Word(float F) {
  uint32_t B;
  std::memcpy(&B, &F, 4);
  return B;
}
uint64_t f64Word(double D) {
  uint64_t B;
  std::memcpy(&B, &D, 8);
  return B;
}

/// Edge-value operand pool per kind, in the vm's u64 lane-word
/// representation. Includes the values most likely to expose a divergence
/// between the Simd expressions and the ScalarOpsImpl ones: NaN, both
/// signed zeros, infinities, INT_MIN/INT_MAX, all-ones, and shift counts
/// at/past the element width.
std::vector<uint64_t> edgeWords(ScalarKind K) {
  switch (K) {
  case ScalarKind::Pred:
    // 0/1 are canonical; 2/3 exercise the &1 normalization both engines
    // apply to predicate sources.
    return {0, 1, 2, 3};
  case ScalarKind::U8:
    return {0, 1, 2, 7, 8, 9, 0x7f, 0x80, 0xfe, 0xff};
  case ScalarKind::S32:
  case ScalarKind::U32:
    return {0,          1,          2,          5,         31,
            32,         33,         0x7fffffff, 0x80000000, 0xfffffffe,
            0xffffffff};
  case ScalarKind::S64:
  case ScalarKind::U64:
    return {0,
            1,
            2,
            63,
            64,
            65,
            0x7fffffffffffffffull,
            0x8000000000000000ull,
            0xfffffffffffffffeull,
            0xffffffffffffffffull};
  case ScalarKind::F32:
    return {f32Word(0.0f),
            f32Word(-0.0f),
            f32Word(1.0f),
            f32Word(-1.5f),
            f32Word(3.25f),
            f32Word(3e9f), // out of s32/u32 range (saturating converts)
            f32Word(-3e9f),
            f32Word(std::numeric_limits<float>::quiet_NaN()),
            f32Word(std::numeric_limits<float>::infinity()),
            f32Word(-std::numeric_limits<float>::infinity()),
            f32Word(std::numeric_limits<float>::max()),
            f32Word(std::numeric_limits<float>::denorm_min())};
  case ScalarKind::F64:
    return {f64Word(0.0),
            f64Word(-0.0),
            f64Word(1.0),
            f64Word(-1.5),
            f64Word(3.25),
            f64Word(1e300),
            f64Word(-1e300),
            f64Word(std::numeric_limits<double>::quiet_NaN()),
            f64Word(std::numeric_limits<double>::infinity()),
            f64Word(-std::numeric_limits<double>::infinity()),
            f64Word(std::numeric_limits<double>::max()),
            f64Word(std::numeric_limits<double>::denorm_min())};
  }
  return {0};
}

/// Lane L of the buffer gets pool[(Base + L * Stride) % size]: rotating the
/// pool through the lanes gives every lane a distinct value so cross-lane
/// mixups (wrong shuffle, wrong width) cannot cancel out.
void fillLanes(uint64_t *Buf, unsigned W, const std::vector<uint64_t> &Pool,
               size_t Base, size_t Stride) {
  for (unsigned L = 0; L < W; ++L)
    Buf[L] = Pool[(Base + L * Stride) % Pool.size()];
}

//===----------------------------------------------------------------------===
// Layer 1: the Simd value class, Array and Native backends.
//===----------------------------------------------------------------------===

template <typename T> std::vector<T> typedPool() {
  if constexpr (std::is_floating_point_v<T>)
    return {T(0.0),
            T(-0.0),
            T(1.0),
            T(-1.5),
            T(3.25),
            std::numeric_limits<T>::quiet_NaN(),
            std::numeric_limits<T>::infinity(),
            -std::numeric_limits<T>::infinity(),
            std::numeric_limits<T>::max(),
            std::numeric_limits<T>::denorm_min()};
  else
    return {T(0),
            T(1),
            T(2),
            T(sizeof(T) * 8 - 1),
            T(sizeof(T) * 8),
            T(sizeof(T) * 8 + 1),
            std::numeric_limits<T>::max(),
            std::numeric_limits<T>::min(),
            T(-1)};
}

template <typename T> bool bitsEqual(T A, T B) {
  return std::memcmp(&A, &B, sizeof(T)) == 0;
}

/// Integer + - * << >> ~ & | ^ neg against the ScalarOpsImpl formulas
/// (everything on the unsigned counterpart, shift counts masked).
template <typename T, unsigned W, SimdBackend B> void checkIntOps() {
  using S = Simd<T, W, B>;
  using U = std::make_unsigned_t<T>;
  const std::vector<T> Pool = typedPool<T>();
  const unsigned Mask = sizeof(T) * 8 - 1;
  for (size_t I = 0; I < Pool.size(); ++I)
    for (size_t J = 0; J < Pool.size(); ++J) {
      S A, X;
      for (unsigned L = 0; L < W; ++L) {
        A.setLane(L, Pool[(I + L) % Pool.size()]);
        X.setLane(L, Pool[(J + 3 * L) % Pool.size()]);
      }
      for (unsigned L = 0; L < W; ++L) {
        const U UA = static_cast<U>(A.lane(L));
        const U UX = static_cast<U>(X.lane(L));
        EXPECT_EQ((A + X).lane(L), static_cast<T>(UA + UX));
        EXPECT_EQ((A - X).lane(L), static_cast<T>(UA - UX));
        EXPECT_EQ((A * X).lane(L), static_cast<T>(UA * UX));
        EXPECT_EQ((A & X).lane(L), static_cast<T>(UA & UX));
        EXPECT_EQ((A | X).lane(L), static_cast<T>(UA | UX));
        EXPECT_EQ((A ^ X).lane(L), static_cast<T>(UA ^ UX));
        EXPECT_EQ((~A).lane(L), static_cast<T>(~UA));
        EXPECT_EQ(A.negated().lane(L), static_cast<T>(U(0) - UA));
        EXPECT_EQ(A.shlMasked(X).lane(L),
                  static_cast<T>(UA << (UX & Mask)));
        EXPECT_EQ(A.shrMasked(X).lane(L),
                  static_cast<T>(A.lane(L) >> (UX & Mask)));
      }
    }
}

/// Float + - * /, negation and compare-blend min/max, bit-compared so NaN
/// payloads and signed zeros count.
template <typename T, unsigned W, SimdBackend B> void checkFloatOps() {
  using S = Simd<T, W, B>;
  const std::vector<T> Pool = typedPool<T>();
  for (size_t I = 0; I < Pool.size(); ++I)
    for (size_t J = 0; J < Pool.size(); ++J) {
      S A, X;
      for (unsigned L = 0; L < W; ++L) {
        A.setLane(L, Pool[(I + L) % Pool.size()]);
        X.setLane(L, Pool[(J + 3 * L) % Pool.size()]);
      }
      const S Min = S::select(A.cmpLt(X), A, X);
      const S Max = S::select(A.cmpGt(X), A, X);
      for (unsigned L = 0; L < W; ++L) {
        const T FA = A.lane(L), FX = X.lane(L);
        EXPECT_TRUE(bitsEqual((A + X).lane(L), T(FA + FX)));
        EXPECT_TRUE(bitsEqual((A - X).lane(L), T(FA - FX)));
        EXPECT_TRUE(bitsEqual((A * X).lane(L), T(FA * FX)));
        EXPECT_TRUE(bitsEqual((A / X).lane(L), T(FA / FX)));
        EXPECT_TRUE(bitsEqual(A.negated().lane(L), T(-FA)));
        // ScalarOpsImpl min/max are the plain ternaries.
        EXPECT_TRUE(bitsEqual(Min.lane(L), FA < FX ? FA : FX));
        EXPECT_TRUE(bitsEqual(Max.lane(L), FA > FX ? FA : FX));
      }
    }
}

/// Compare masks are all-ones/zero; select() is an exact bit blend.
template <typename T, unsigned W, SimdBackend B> void checkCmpSelect() {
  using S = Simd<T, W, B>;
  using M = typename S::MaskElt;
  const std::vector<T> Pool = typedPool<T>();
  for (size_t I = 0; I < Pool.size(); ++I) {
    S A, X;
    for (unsigned L = 0; L < W; ++L) {
      A.setLane(L, Pool[(I + L) % Pool.size()]);
      X.setLane(L, Pool[(I + 2 * L + 1) % Pool.size()]);
    }
    const auto Cases = {A.cmpEq(X), A.cmpNe(X), A.cmpLt(X),
                        A.cmpLe(X), A.cmpGt(X), A.cmpGe(X)};
    unsigned C = 0;
    for (const auto &Mask : Cases) {
      for (unsigned L = 0; L < W; ++L) {
        const T FA = A.lane(L), FX = X.lane(L);
        bool Exp = false;
        switch (C) {
        case 0: Exp = FA == FX; break;
        case 1: Exp = FA != FX; break;
        case 2: Exp = FA < FX; break;
        case 3: Exp = FA <= FX; break;
        case 4: Exp = FA > FX; break;
        case 5: Exp = FA >= FX; break;
        }
        EXPECT_EQ(Mask.lane(L), Exp ? M(-1) : M(0));
      }
      ++C;
    }
    const S Sel = S::select(A.cmpLt(X), A, X);
    for (unsigned L = 0; L < W; ++L)
      EXPECT_TRUE(bitsEqual(Sel.lane(L),
                            A.lane(L) < X.lane(L) ? A.lane(L) : X.lane(L)));
  }
}

/// u64 lane-word load/store round trip: loadLaneWords truncates/bitcasts to
/// the element exactly like fromBits, storeLaneWords zero-extends like
/// toBits.
template <typename T, unsigned W, SimdBackend B> void checkLaneWords() {
  using S = Simd<T, W, B>;
  const std::vector<uint64_t> Pool = {0,
                                      1,
                                      0x7f,
                                      0x80,
                                      0xff,
                                      0x7fffffff,
                                      0x80000000,
                                      0xffffffff,
                                      0x123456789abcdef0ull,
                                      ~0ull,
                                      f32Word(-1.5f),
                                      f64Word(-1.5)};
  uint64_t In[8], Out[8];
  for (size_t I = 0; I < Pool.size(); ++I) {
    fillLanes(In, W, Pool, I, 1);
    const S V = S::loadLaneWords(In);
    V.storeLaneWords(Out);
    for (unsigned L = 0; L < W; ++L) {
      // Reference: the scalar fromBits/toBits pair.
      T Elem;
      if constexpr (std::is_same_v<T, float>) {
        uint32_t Low = static_cast<uint32_t>(In[L]);
        std::memcpy(&Elem, &Low, 4);
      } else if constexpr (std::is_same_v<T, double>) {
        std::memcpy(&Elem, &In[L], 8);
      } else {
        Elem = static_cast<T>(In[L]);
      }
      EXPECT_TRUE(bitsEqual(V.lane(L), Elem));
      uint64_t Word;
      if constexpr (std::is_same_v<T, float>) {
        uint32_t Low;
        std::memcpy(&Low, &Elem, 4);
        Word = Low;
      } else if constexpr (std::is_same_v<T, double>) {
        std::memcpy(&Word, &Elem, 8);
      } else {
        Word = static_cast<uint64_t>(
            static_cast<std::make_unsigned_t<T>>(Elem));
      }
      EXPECT_EQ(Out[L], Word);
    }
  }
}

template <template <typename, unsigned, SimdBackend> class Fn>
struct ForAllWidths {
  template <typename T, SimdBackend B> static void run() {
    Fn<T, 1, B>::run();
    Fn<T, 2, B>::run();
    Fn<T, 4, B>::run();
    Fn<T, 8, B>::run();
  }
};

// Wrap the function templates in classes so they can be passed around.
template <typename T, unsigned W, SimdBackend B> struct IntOpsT {
  static void run() { checkIntOps<T, W, B>(); }
};
template <typename T, unsigned W, SimdBackend B> struct FloatOpsT {
  static void run() { checkFloatOps<T, W, B>(); }
};
template <typename T, unsigned W, SimdBackend B> struct CmpSelT {
  static void run() { checkCmpSelect<T, W, B>(); }
};
template <typename T, unsigned W, SimdBackend B> struct LaneWordsT {
  static void run() { checkLaneWords<T, W, B>(); }
};

template <SimdBackend B> void runValueClassSuite() {
  ForAllWidths<IntOpsT>::run<uint8_t, B>();
  ForAllWidths<IntOpsT>::run<int32_t, B>();
  ForAllWidths<IntOpsT>::run<uint32_t, B>();
  ForAllWidths<IntOpsT>::run<int64_t, B>();
  ForAllWidths<IntOpsT>::run<uint64_t, B>();
  ForAllWidths<FloatOpsT>::run<float, B>();
  ForAllWidths<FloatOpsT>::run<double, B>();
  ForAllWidths<CmpSelT>::run<int32_t, B>();
  ForAllWidths<CmpSelT>::run<uint64_t, B>();
  ForAllWidths<CmpSelT>::run<float, B>();
  ForAllWidths<CmpSelT>::run<double, B>();
  ForAllWidths<LaneWordsT>::run<uint8_t, B>();
  ForAllWidths<LaneWordsT>::run<int32_t, B>();
  ForAllWidths<LaneWordsT>::run<uint32_t, B>();
  ForAllWidths<LaneWordsT>::run<int64_t, B>();
  ForAllWidths<LaneWordsT>::run<uint64_t, B>();
  ForAllWidths<LaneWordsT>::run<float, B>();
  ForAllWidths<LaneWordsT>::run<double, B>();
}

TEST(SimdClass, ArrayBackend) { runValueClassSuite<SimdBackend::Array>(); }

#if SIMTVEC_SIMD_HAVE_NATIVE
TEST(SimdClass, NativeBackend) { runValueClassSuite<SimdBackend::Native>(); }

/// The two backends agree bit for bit (the Array backend is itself checked
/// against the scalar formulas above, so this pins Native == Array ==
/// scalar).
template <typename T, unsigned W> void checkBackendAgreement() {
  using SA = Simd<T, W, SimdBackend::Array>;
  using SN = Simd<T, W, SimdBackend::Native>;
  const std::vector<T> Pool = typedPool<T>();
  T BufA[8], BufN[8], In0[8], In1[8];
  for (size_t I = 0; I < Pool.size(); ++I)
    for (size_t J = 0; J < Pool.size(); ++J) {
      for (unsigned L = 0; L < W; ++L) {
        In0[L] = Pool[(I + L) % Pool.size()];
        In1[L] = Pool[(J + 3 * L) % Pool.size()];
      }
      const SA A0 = SA::load(In0), A1 = SA::load(In1);
      const SN N0 = SN::load(In0), N1 = SN::load(In1);
      (A0 + A1).store(BufA);
      (N0 + N1).store(BufN);
      EXPECT_EQ(std::memcmp(BufA, BufN, W * sizeof(T)), 0);
      (A0 * A1).store(BufA);
      (N0 * N1).store(BufN);
      EXPECT_EQ(std::memcmp(BufA, BufN, W * sizeof(T)), 0);
      SA::select(A0.cmpLt(A1), A0, A1).store(BufA);
      SN::select(N0.cmpLt(N1), N0, N1).store(BufN);
      EXPECT_EQ(std::memcmp(BufA, BufN, W * sizeof(T)), 0);
    }
}

TEST(SimdClass, BackendsAgree) {
  checkBackendAgreement<int32_t, 4>();
  checkBackendAgreement<uint64_t, 8>();
  checkBackendAgreement<float, 8>();
  checkBackendAgreement<double, 2>();
  checkBackendAgreement<uint8_t, 8>();
  checkBackendAgreement<int64_t, 1>();
}
#endif // SIMTVEC_SIMD_HAVE_NATIVE

//===----------------------------------------------------------------------===
// Layer 2: resolved lane kernels, Vector vs Scalar vs eval* thunks.
//===----------------------------------------------------------------------===

/// Signed INT_MIN / -1 overflows in the generic engine too (ScalarOpsImpl
/// guards only division by zero), so the differential must not feed it.
bool divOverflows(Opcode Op, ScalarKind K, uint64_t A, uint64_t B) {
  if (Op != Opcode::Div && Op != Opcode::Rem)
    return false;
  if (K == ScalarKind::S32)
    return static_cast<uint32_t>(A) == 0x80000000u &&
           static_cast<uint32_t>(B) == 0xffffffffu;
  if (K == ScalarKind::S64)
    return A == 0x8000000000000000ull && B == ~0ull;
  return false;
}

TEST(SimdKernelDiff, Binary) {
  const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div,
                        Opcode::Rem, Opcode::Min, Opcode::Max, Opcode::And,
                        Opcode::Or,  Opcode::Xor, Opcode::Shl, Opcode::Shr};
  for (Opcode Op : Ops)
    for (ScalarKind K : AllKinds) {
      const BinaryFn Thunk = resolveBinary(Op, K);
      if (!Thunk)
        continue;
      const std::vector<uint64_t> Pool = edgeWords(K);
      for (unsigned W : Widths) {
        const LaneKernelFn V = resolveBinaryLanes(Op, K, W, SimdPath::Vector);
        const LaneKernelFn S = resolveBinaryLanes(Op, K, W, SimdPath::Scalar);
        ASSERT_NE(V, nullptr);
        ASSERT_NE(S, nullptr);
        uint64_t A[8], B[8], DV[8], DS[8];
        for (size_t I = 0; I < Pool.size(); ++I)
          for (size_t J = 0; J < Pool.size(); ++J) {
            fillLanes(A, W, Pool, I, 1);
            fillLanes(B, W, Pool, J, 3);
            bool Skip = false;
            for (unsigned L = 0; L < W; ++L)
              Skip = Skip || divOverflows(Op, K, A[L], B[L]);
            if (Skip)
              continue;
            V(DV, A, B, nullptr);
            S(DS, A, B, nullptr);
            for (unsigned L = 0; L < W; ++L) {
              ASSERT_EQ(DV[L], DS[L])
                  << opcodeName(Op) << " " << Type::kindName(K) << " w" << W
                  << " lane " << L;
              ASSERT_EQ(DS[L], Thunk(A[L], B[L]))
                  << opcodeName(Op) << " " << Type::kindName(K) << " w" << W;
            }
            // Aliasing contract: Dst may be exactly S0 (inputs fully read
            // before any store).
            uint64_t InPlace[8];
            std::memcpy(InPlace, A, sizeof(InPlace));
            V(InPlace, InPlace, B, nullptr);
            for (unsigned L = 0; L < W; ++L)
              ASSERT_EQ(InPlace[L], DS[L]);
          }
      }
    }
}

TEST(SimdKernelDiff, Unary) {
  const Opcode Ops[] = {Opcode::Neg,   Opcode::Abs, Opcode::Not,
                        Opcode::Rcp,   Opcode::Sqrt, Opcode::Rsqrt,
                        Opcode::Sin,   Opcode::Cos,  Opcode::Lg2,
                        Opcode::Ex2};
  for (Opcode Op : Ops)
    for (ScalarKind K : AllKinds) {
      const UnaryFn Thunk = resolveUnary(Op, K);
      if (!Thunk)
        continue;
      const std::vector<uint64_t> Pool = edgeWords(K);
      for (unsigned W : Widths) {
        const LaneKernelFn V = resolveUnaryLanes(Op, K, W, SimdPath::Vector);
        const LaneKernelFn S = resolveUnaryLanes(Op, K, W, SimdPath::Scalar);
        ASSERT_NE(V, nullptr);
        ASSERT_NE(S, nullptr);
        uint64_t A[8], DV[8], DS[8];
        for (size_t I = 0; I < Pool.size(); ++I) {
          fillLanes(A, W, Pool, I, 1);
          V(DV, A, nullptr, nullptr);
          S(DS, A, nullptr, nullptr);
          for (unsigned L = 0; L < W; ++L) {
            ASSERT_EQ(DV[L], DS[L])
                << opcodeName(Op) << " " << Type::kindName(K) << " w" << W;
            ASSERT_EQ(DS[L], Thunk(A[L]));
          }
        }
      }
    }
}

/// NaN-equivalent comparison for the mad-vs-thunk check: `a*b + c` has two
/// NaN sources (a propagated input payload vs the x86 "real indefinite"
/// from inf*0 / inf-inf), and which one the add returns depends on operand
/// order — which the compiler may commute differently in different
/// instantiations of the same evalMadImpl expression. Payloads of
/// *generated* NaNs are therefore not stable across instantiations (this
/// predates the SIMD path); the hard bit-identity contract is between the
/// two engine paths, which is asserted strictly.
bool sameOrBothNaN(ScalarKind K, uint64_t A, uint64_t B) {
  if (A == B)
    return true;
  if (K == ScalarKind::F32) {
    const auto IsNaN = [](uint64_t W) {
      return (W & 0x7f800000u) == 0x7f800000u && (W & 0x007fffffu) != 0;
    };
    return IsNaN(A) && IsNaN(B);
  }
  if (K == ScalarKind::F64) {
    const auto IsNaN = [](uint64_t W) {
      return (W & 0x7ff0000000000000ull) == 0x7ff0000000000000ull &&
             (W & 0x000fffffffffffffull) != 0;
    };
    return IsNaN(A) && IsNaN(B);
  }
  return false;
}

TEST(SimdKernelDiff, Mad) {
  for (ScalarKind K : AllKinds) {
    const MadFn Thunk = resolveMad(K);
    if (!Thunk)
      continue;
    const std::vector<uint64_t> Pool = edgeWords(K);
    for (unsigned W : Widths) {
      const LaneKernelFn V = resolveMadLanes(K, W, SimdPath::Vector);
      const LaneKernelFn S = resolveMadLanes(K, W, SimdPath::Scalar);
      ASSERT_NE(V, nullptr);
      ASSERT_NE(S, nullptr);
      uint64_t A[8], B[8], C[8], DV[8], DS[8];
      for (size_t I = 0; I < Pool.size(); ++I)
        for (size_t J = 0; J < Pool.size(); ++J)
          for (size_t M = 0; M < Pool.size(); M += 2) {
            fillLanes(A, W, Pool, I, 1);
            fillLanes(B, W, Pool, J, 3);
            fillLanes(C, W, Pool, M, 5);
            V(DV, A, B, C);
            S(DS, A, B, C);
            for (unsigned L = 0; L < W; ++L) {
              ASSERT_EQ(DV[L], DS[L])
                  << "mad " << Type::kindName(K) << " w" << W;
              ASSERT_TRUE(sameOrBothNaN(K, DS[L], Thunk(A[L], B[L], C[L])))
                  << "mad " << Type::kindName(K) << " w" << W;
            }
          }
    }
  }
}

TEST(SimdKernelDiff, Setp) {
  const CmpOp Cmps[] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                        CmpOp::Le, CmpOp::Gt, CmpOp::Ge};
  for (CmpOp C : Cmps)
    for (ScalarKind K : AllKinds) {
      const CmpFn Thunk = resolveCmp(C, K);
      if (!Thunk)
        continue;
      const std::vector<uint64_t> Pool = edgeWords(K);
      for (unsigned W : Widths) {
        const LaneKernelFn V = resolveSetpLanes(C, K, W, SimdPath::Vector);
        const LaneKernelFn S = resolveSetpLanes(C, K, W, SimdPath::Scalar);
        ASSERT_NE(V, nullptr);
        ASSERT_NE(S, nullptr);
        uint64_t A[8], B[8], DV[8], DS[8];
        for (size_t I = 0; I < Pool.size(); ++I)
          for (size_t J = 0; J < Pool.size(); ++J) {
            fillLanes(A, W, Pool, I, 1);
            fillLanes(B, W, Pool, J, 3);
            V(DV, A, B, nullptr);
            S(DS, A, B, nullptr);
            for (unsigned L = 0; L < W; ++L) {
              ASSERT_EQ(DV[L], DS[L]) << cmpOpName(C) << " "
                                      << Type::kindName(K) << " w" << W;
              ASSERT_EQ(DS[L], Thunk(A[L], B[L]) ? 1u : 0u);
            }
          }
      }
    }
}

TEST(SimdKernelDiff, SelpAndMov) {
  const std::vector<uint64_t> Vals = edgeWords(ScalarKind::U64);
  const std::vector<uint64_t> Preds = edgeWords(ScalarKind::Pred);
  for (unsigned W : Widths) {
    const LaneKernelFn SelV = resolveSelpLanes(W, SimdPath::Vector);
    const LaneKernelFn SelS = resolveSelpLanes(W, SimdPath::Scalar);
    const LaneKernelFn MovV = resolveMovLanes(W, SimdPath::Vector);
    const LaneKernelFn MovS = resolveMovLanes(W, SimdPath::Scalar);
    ASSERT_TRUE(SelV && SelS && MovV && MovS);
    uint64_t A[8], B[8], P[8], DV[8], DS[8];
    for (size_t I = 0; I < Vals.size(); ++I)
      for (size_t J = 0; J < Preds.size(); ++J) {
        fillLanes(A, W, Vals, I, 1);
        fillLanes(B, W, Vals, I + 4, 3);
        fillLanes(P, W, Preds, J, 1);
        SelV(DV, A, B, P);
        SelS(DS, A, B, P);
        for (unsigned L = 0; L < W; ++L) {
          ASSERT_EQ(DV[L], DS[L]) << "selp w" << W;
          ASSERT_EQ(DS[L], (P[L] & 1) ? A[L] : B[L]);
        }
        MovV(DV, A, nullptr, nullptr);
        MovS(DS, A, nullptr, nullptr);
        for (unsigned L = 0; L < W; ++L) {
          ASSERT_EQ(DV[L], A[L]);
          ASSERT_EQ(DS[L], A[L]);
        }
      }
  }
}

TEST(SimdKernelDiff, Convert) {
  for (ScalarKind DstK : AllKinds)
    for (ScalarKind SrcK : AllKinds) {
      const ConvertFn Thunk = resolveConvert(DstK, SrcK);
      if (!Thunk)
        continue;
      const std::vector<uint64_t> Pool = edgeWords(SrcK);
      for (unsigned W : Widths) {
        const LaneKernelFn V =
            resolveConvertLanes(DstK, SrcK, W, SimdPath::Vector);
        const LaneKernelFn S =
            resolveConvertLanes(DstK, SrcK, W, SimdPath::Scalar);
        ASSERT_NE(V, nullptr);
        ASSERT_NE(S, nullptr);
        uint64_t A[8], DV[8], DS[8];
        for (size_t I = 0; I < Pool.size(); ++I) {
          fillLanes(A, W, Pool, I, 1);
          V(DV, A, nullptr, nullptr);
          S(DS, A, nullptr, nullptr);
          for (unsigned L = 0; L < W; ++L) {
            ASSERT_EQ(DV[L], DS[L])
                << "cvt " << Type::kindName(DstK) << " <- "
                << Type::kindName(SrcK) << " w" << W;
            ASSERT_EQ(DS[L], Thunk(A[L]));
          }
        }
      }
    }
}

TEST(SimdKernelDiff, CmpSel) {
  const CmpOp Cmps[] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                        CmpOp::Le, CmpOp::Gt, CmpOp::Ge};
  const std::vector<uint64_t> Vals = edgeWords(ScalarKind::U64);
  for (CmpOp C : Cmps)
    for (ScalarKind K : AllKinds) {
      if (!resolveCmp(C, K))
        continue;
      const std::vector<uint64_t> Pool = edgeWords(K);
      for (unsigned W : Widths) {
        const CmpSelKernelFn V = resolveCmpSelLanes(C, K, W, SimdPath::Vector);
        const CmpSelKernelFn S = resolveCmpSelLanes(C, K, W, SimdPath::Scalar);
        ASSERT_NE(V, nullptr);
        ASSERT_NE(S, nullptr);
        uint64_t A[8], B[8], Cv[8], E[8];
        uint64_t PV[8], SelV[8], PS[8], SelS[8];
        for (size_t I = 0; I < Pool.size(); ++I)
          for (size_t J = 0; J < Pool.size(); ++J) {
            fillLanes(A, W, Pool, I, 1);
            fillLanes(B, W, Pool, J, 3);
            fillLanes(Cv, W, Vals, I, 1);
            fillLanes(E, W, Vals, J + 2, 3);
            V(PV, SelV, A, B, Cv, E);
            S(PS, SelS, A, B, Cv, E);
            const CmpFn Thunk = resolveCmp(C, K);
            for (unsigned L = 0; L < W; ++L) {
              ASSERT_EQ(PV[L], PS[L]) << "cmpsel pred " << cmpOpName(C) << " "
                                      << Type::kindName(K) << " w" << W;
              ASSERT_EQ(SelV[L], SelS[L]) << "cmpsel sel " << cmpOpName(C)
                                          << " " << Type::kindName(K);
              const bool P = Thunk(A[L], B[L]);
              ASSERT_EQ(PS[L], P ? 1u : 0u);
              ASSERT_EQ(SelS[L], P ? Cv[L] : E[L]);
            }
          }
      }
    }
}

TEST(SimdKernelDiff, RunAddrCheck) {
  // Reference: the interpreter's resolveAddr bounds form per member, with
  // the u64 wrap add.
  const auto Ref = [](uint64_t Lane, uint64_t Offset, uint64_t Limit,
                      uint64_t Size, uint64_t &Addr) {
    Addr = Lane + Offset; // wraps
    return !(Size > Limit || Addr > Limit - Size);
  };
  const uint64_t Lanes[8] = {0,  4,       8,    12,
                             16, 1 << 20, ~0ull, 0x7fffffffffffffffull};
  const uint64_t Offsets[] = {0, 4, 16, ~0ull, 0x8000000000000000ull};
  const uint64_t Limits[] = {0, 3, 64, 1 << 20, ~0ull};
  const uint64_t Sizes[] = {1, 4, 8};
  for (unsigned Len : {2u, 4u, 8u}) {
    const RunAddrCheckFn Fn = resolveRunAddrCheck(Len, SimdPath::Vector);
    ASSERT_NE(Fn, nullptr);
    for (uint64_t Off : Offsets)
      for (uint64_t Limit : Limits)
        for (uint64_t Size : Sizes) {
          uint64_t Out[8] = {0};
          const bool Got = Fn(Out, Lanes, Off, Limit, Size);
          bool Want = true;
          for (unsigned J = 0; J < Len; ++J) {
            uint64_t Addr;
            Want = Ref(Lanes[J], Off, Limit, Size, Addr) && Want;
            EXPECT_EQ(Out[J], Addr);
          }
          EXPECT_EQ(Got, Want)
              << "len " << Len << " off " << Off << " limit " << Limit;
        }
  }
}

//===----------------------------------------------------------------------===
// Layer 3: the audited resolver-nullability policy (ISSUE 6 satellite):
// kernel-iff-thunk on both paths, null outside the specialized widths.
//===----------------------------------------------------------------------===

TEST(SimdKernelAudit, KernelIffThunk) {
  const Opcode BinOps[] = {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div,
                           Opcode::Rem, Opcode::Min, Opcode::Max, Opcode::And,
                           Opcode::Or,  Opcode::Xor, Opcode::Shl, Opcode::Shr};
  const Opcode UnOps[] = {Opcode::Neg,  Opcode::Abs,  Opcode::Not,
                          Opcode::Rcp,  Opcode::Sqrt, Opcode::Rsqrt,
                          Opcode::Sin,  Opcode::Cos,  Opcode::Lg2,
                          Opcode::Ex2};
  const CmpOp Cmps[] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                        CmpOp::Le, CmpOp::Gt, CmpOp::Ge};
  for (SimdPath P : {SimdPath::Scalar, SimdPath::Vector})
    for (unsigned W : Widths)
      for (ScalarKind K : AllKinds) {
        for (Opcode Op : BinOps)
          EXPECT_EQ(resolveBinaryLanes(Op, K, W, P) != nullptr,
                    resolveBinary(Op, K) != nullptr)
              << simdPathName(P) << " " << opcodeName(Op) << " "
              << Type::kindName(K) << " w" << W;
        for (Opcode Op : UnOps)
          EXPECT_EQ(resolveUnaryLanes(Op, K, W, P) != nullptr,
                    resolveUnary(Op, K) != nullptr)
              << simdPathName(P) << " " << opcodeName(Op) << " "
              << Type::kindName(K) << " w" << W;
        EXPECT_EQ(resolveMadLanes(K, W, P) != nullptr,
                  resolveMad(K) != nullptr);
        for (CmpOp C : Cmps) {
          EXPECT_EQ(resolveSetpLanes(C, K, W, P) != nullptr,
                    resolveCmp(C, K) != nullptr);
          EXPECT_EQ(resolveCmpSelLanes(C, K, W, P) != nullptr,
                    resolveCmp(C, K) != nullptr);
        }
        for (ScalarKind SrcK : AllKinds)
          EXPECT_EQ(resolveConvertLanes(K, SrcK, W, P) != nullptr,
                    resolveConvert(K, SrcK) != nullptr)
              << simdPathName(P) << " cvt " << Type::kindName(K) << " <- "
              << Type::kindName(SrcK) << " w" << W;
        EXPECT_NE(resolveSelpLanes(W, P), nullptr);
        EXPECT_NE(resolveMovLanes(W, P), nullptr);
      }
}

TEST(SimdKernelAudit, UnspecializedWidthsAreNull) {
  for (SimdPath P : {SimdPath::Scalar, SimdPath::Vector})
    for (unsigned W : {0u, 3u, 5u, 6u, 7u, 9u, 16u, 64u}) {
      EXPECT_EQ(resolveBinaryLanes(Opcode::Add, ScalarKind::F32, W, P),
                nullptr);
      EXPECT_EQ(resolveUnaryLanes(Opcode::Neg, ScalarKind::S32, W, P),
                nullptr);
      EXPECT_EQ(resolveMadLanes(ScalarKind::F32, W, P), nullptr);
      EXPECT_EQ(resolveSetpLanes(CmpOp::Lt, ScalarKind::U32, W, P), nullptr);
      EXPECT_EQ(resolveSelpLanes(W, P), nullptr);
      EXPECT_EQ(resolveMovLanes(W, P), nullptr);
      EXPECT_EQ(
          resolveConvertLanes(ScalarKind::F32, ScalarKind::S32, W, P),
          nullptr);
      EXPECT_EQ(resolveCmpSelLanes(CmpOp::Lt, ScalarKind::F32, W, P),
                nullptr);
      EXPECT_EQ(resolveRunAddrCheck(W, P), nullptr);
    }
  // The run address check is vector-path-only by design: the scalar oracle
  // always walks the member loop.
  for (unsigned Len : {1u, 2u, 3u, 4u, 8u})
    EXPECT_EQ(resolveRunAddrCheck(Len, SimdPath::Scalar), nullptr);
  for (unsigned Len : {1u, 3u, 5u, 16u})
    EXPECT_EQ(resolveRunAddrCheck(Len, SimdPath::Vector), nullptr);
}

TEST(SimdKnobs, PathAndModeNames) {
  EXPECT_STREQ(simdPathName(SimdPath::Vector), "vector");
  EXPECT_STREQ(simdPathName(SimdPath::Scalar), "scalar");
  EXPECT_STREQ(simdModeName(SimdMode::Auto), "auto");
  EXPECT_STREQ(simdModeName(SimdMode::Vector), "vector");
  EXPECT_STREQ(simdModeName(SimdMode::Scalar), "scalar");
  // Explicit modes win regardless of the environment.
  EXPECT_EQ(resolveSimdPath(SimdMode::Vector), SimdPath::Vector);
  EXPECT_EQ(resolveSimdPath(SimdMode::Scalar), SimdPath::Scalar);
}

} // namespace
