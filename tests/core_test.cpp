//===- tests/core_test.cpp - Vectorizer / EM / cache unit tests -----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/core/Vectorizer.h"
#include "simtvec/ir/Printer.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/runtime/Runtime.h"
#include "simtvec/transforms/Passes.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

const char *DivergentSrc = R"(
.kernel dk (.param .u64 p)
{
  .reg .u32 %t, %x;
  .reg .u64 %a, %off;
  .reg .pred %c;
entry:
  mov.u32 %t, %tid.x;
  and.u32 %x, %t, 1;
  setp.eq.u32 %c, %x, 1;
  @%c bra odd, even;
odd:
  mul.u32 %x, %t, 3;
  bra join;
even:
  mul.u32 %x, %t, 5;
  bra join;
join:
  ld.param.u64 %a, [p];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %x;
  ret;
}
)";

const char *BarrierSrc = R"(
.kernel bk (.param .u64 p)
{
  .shared .b8 s[256];
  .reg .u32 %t, %x;
  .reg .u64 %sa;
entry:
  mov.u32 %t, %tid.x;
  cvt.u64.u32 %sa, %t;
  shl.u64 %sa, %sa, 2;
  st.shared.u32 [%sa], %t;
  bar.sync;
  ld.shared.u32 %x, [%sa];
  ret;
}
)";

/// Prepares a scalar kernel the way the translation cache does.
struct Prepared {
  std::unique_ptr<Module> M;
  Kernel *K = nullptr;
  SpecializationPlan Plan;
};

Prepared prepare(const char *Src) {
  Prepared P;
  P.M = parseModuleOrDie(Src);
  P.K = P.M->kernels().front().get();
  runPredicateToSelect(*P.K);
  runBarrierSplit(*P.K);
  P.Plan = SpecializationPlan::build(*P.K);
  return P;
}

size_t countOp(const Kernel &K, Opcode Op) {
  size_t N = 0;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      N += I.Op == Op;
  return N;
}

//===----------------------------------------------------------------------===
// SpecializationPlan
//===----------------------------------------------------------------------===

TEST(SpecializationPlanTest, DivergentBranchTargetsBecomeEntries) {
  Prepared P = prepare(DivergentSrc);
  // Entries: initial + odd + even (join is also a branch-successor? No:
  // join is reached by unconditional branches only).
  EXPECT_EQ(P.Plan.EntryScalarBlocks.size(), 3u);
  EXPECT_NE(P.Plan.EntryIdOf[P.K->findBlock("odd")], ~0u);
  EXPECT_NE(P.Plan.EntryIdOf[P.K->findBlock("even")], ~0u);
  EXPECT_EQ(P.Plan.EntryIdOf[P.K->findBlock("join")], ~0u);
}

TEST(SpecializationPlanTest, BarrierContinuationBecomesEntry) {
  Prepared P = prepare(BarrierSrc);
  // BarrierSplit created a continuation block that must be an entry.
  ASSERT_EQ(P.Plan.EntryScalarBlocks.size(), 2u);
  uint32_t Cont = P.Plan.EntryScalarBlocks[1];
  // The continuation holds the post-barrier load.
  bool HasLoad = false;
  for (const Instruction &I : P.K->Blocks[Cont].Insts)
    HasLoad |= I.Op == Opcode::Ld && I.Space == AddressSpace::Shared;
  EXPECT_TRUE(HasLoad);
}

TEST(SpecializationPlanTest, SlotsCoverEveryRegisterDisjointly) {
  Prepared P = prepare(DivergentSrc);
  // Slots must be disjoint byte ranges within SpillBytes.
  std::vector<std::pair<uint32_t, uint32_t>> Ranges;
  for (uint32_t R = 0; R < P.K->Regs.size(); ++R) {
    Type Ty = P.K->Regs[R].Ty;
    uint32_t Bytes = Ty.isPred() ? 1 : Ty.byteSize();
    Ranges.emplace_back(P.Plan.SlotOf[R], P.Plan.SlotOf[R] + Bytes);
    EXPECT_LE(P.Plan.SlotOf[R] + Bytes, P.Plan.SpillBytes);
  }
  std::sort(Ranges.begin(), Ranges.end());
  for (size_t I = 1; I < Ranges.size(); ++I)
    EXPECT_LE(Ranges[I - 1].second, Ranges[I].first);
}

//===----------------------------------------------------------------------===
// Vectorizer structure
//===----------------------------------------------------------------------===

TEST(VectorizerTest, SchedulerIsBlockZero) {
  Prepared P = prepare(DivergentSrc);
  VectorizeOptions Opts;
  Opts.WarpSize = 4;
  auto V = vectorizeKernel(*P.K, P.Plan, Opts);
  ASSERT_FALSE(verifyKernel(*V).isError()) << verifyKernel(*V).message();
  EXPECT_EQ(V->Blocks[0].Kind, BlockKind::Scheduler);
  EXPECT_EQ(V->Blocks[0].terminator().Op, Opcode::Switch);
  EXPECT_EQ(V->WarpSize, 4u);
  EXPECT_EQ(V->EntryBlocks.size(), P.Plan.EntryScalarBlocks.size());
}

TEST(VectorizerTest, DivergentBranchLowersToVoteSwitch) {
  Prepared P = prepare(DivergentSrc);
  VectorizeOptions Opts;
  Opts.WarpSize = 4;
  auto V = vectorizeKernel(*P.K, P.Plan, Opts);
  EXPECT_EQ(countOp(*V, Opcode::VoteSum), 1u);
  // Scheduler switch + divergence switch.
  EXPECT_EQ(countOp(*V, Opcode::Switch), 2u);
  // Exit handler: spills, per-lane resume points, status, yield.
  EXPECT_GE(countOp(*V, Opcode::Spill), 1u);
  // Only the divergent exit selects per-lane resume points; termination
  // exits discard the contexts.
  EXPECT_EQ(countOp(*V, Opcode::SetRPoint), 1u);
  bool HasExitHandler = false, HasEntryHandler = false;
  for (const BasicBlock &B : V->Blocks) {
    HasExitHandler |= B.Kind == BlockKind::ExitHandler;
    HasEntryHandler |= B.Kind == BlockKind::EntryHandler;
  }
  EXPECT_TRUE(HasExitHandler);
  EXPECT_TRUE(HasEntryHandler);
}

TEST(VectorizerTest, ScalarSpecializationKeepsDirectBranches) {
  Prepared P = prepare(DivergentSrc);
  VectorizeOptions Opts;
  Opts.WarpSize = 1;
  auto V = vectorizeKernel(*P.K, P.Plan, Opts);
  ASSERT_FALSE(verifyKernel(*V).isError());
  EXPECT_EQ(countOp(*V, Opcode::VoteSum), 0u);
  // Only the scheduler switch remains; the conditional branch is direct.
  EXPECT_EQ(countOp(*V, Opcode::Switch), 1u);
  bool HasCondBra = false;
  for (const BasicBlock &B : V->Blocks)
    for (const Instruction &I : B.Insts)
      HasCondBra |= I.Op == Opcode::Bra && I.Guard.isValid();
  EXPECT_TRUE(HasCondBra);
}

TEST(VectorizerTest, BarrierLowersToBarrierYield) {
  Prepared P = prepare(BarrierSrc);
  VectorizeOptions Opts;
  Opts.WarpSize = 4;
  auto V = vectorizeKernel(*P.K, P.Plan, Opts);
  ASSERT_FALSE(verifyKernel(*V).isError());
  EXPECT_EQ(countOp(*V, Opcode::BarSync), 0u); // no raw barriers remain
  // One barrier yield (status Barrier) and one exit yield (status Exit).
  size_t BarrierStatus = 0, ExitStatus = 0;
  for (const BasicBlock &B : V->Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::SetRStatus) {
        auto St = static_cast<ResumeStatus>(I.Srcs[0].immInt());
        BarrierStatus += St == ResumeStatus::Barrier;
        ExitStatus += St == ResumeStatus::Exit;
      }
  EXPECT_EQ(BarrierStatus, 1u);
  EXPECT_EQ(ExitStatus, 1u);
}

TEST(VectorizerTest, VectorRegistersMatchWarpSize) {
  Prepared P = prepare(DivergentSrc);
  for (uint32_t WS : {2u, 4u, 8u}) {
    VectorizeOptions Opts;
    Opts.WarpSize = WS;
    auto V = vectorizeKernel(*P.K, P.Plan, Opts);
    ASSERT_FALSE(verifyKernel(*V).isError());
    for (const VirtualRegister &R : V->Regs)
      if (R.Ty.isVector()) {
        EXPECT_EQ(R.Ty.lanes(), WS);
      }
  }
}

TEST(VectorizerTest, TieEmitsUniformScalars) {
  // gid-independent address arithmetic becomes scalar under TIE.
  Prepared P = prepare(R"(
.kernel tk (.param .u64 p, .param .u32 n)
{
  .reg .u32 %t, %u, %v;
  .reg .u64 %a;
entry:
  mov.u32 %t, %tid.x;
  ld.param.u32 %u, [n];
  mul.u32 %v, %u, 4;     // thread-invariant
  add.u32 %v, %v, %u;    // thread-invariant
  add.u32 %t, %t, %v;    // variant
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %t;
  ret;
}
)");
  VectorizeOptions Plain;
  Plain.WarpSize = 4;
  auto VPlain = vectorizeKernel(*P.K, P.Plan, Plain);
  VectorizeOptions Tie = Plain;
  Tie.ThreadInvariantElim = true;
  auto VTie = vectorizeKernel(*P.K, P.Plan, Tie);
  runCleanupPipeline(*VPlain);
  runCleanupPipeline(*VTie);
  ASSERT_FALSE(verifyKernel(*VTie).isError());
  EXPECT_LT(VTie->instructionCount(), VPlain->instructionCount());
}

TEST(VectorizerTest, PackAndUnpackAroundLoads) {
  // A value computed by vector arithmetic and consumed by a vector op after
  // flowing through a load gets explicit insert/extract handling.
  Prepared P = prepare(R"(
.kernel pk (.param .u64 p)
{
  .reg .u32 %t, %x, %y;
  .reg .u64 %a, %off;
entry:
  mov.u32 %t, %tid.x;
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  ld.param.u64 %a, [p];
  add.u64 %a, %a, %off;
  ld.global.u32 %x, [%a];
  add.u32 %y, %x, %t;     // vector consumer of a replicated producer
  st.global.u32 [%a], %y;
  ret;
}
)");
  VectorizeOptions Opts;
  Opts.WarpSize = 4;
  auto V = vectorizeKernel(*P.K, P.Plan, Opts);
  ASSERT_FALSE(verifyKernel(*V).isError());
  // The loaded lanes are packed for the vector add; the result is unpacked
  // for the stores.
  EXPECT_GE(countOp(*V, Opcode::InsertElement), 4u);
  EXPECT_GE(countOp(*V, Opcode::ExtractElement), 4u);
  // Loads stay scalar and lane-tagged.
  for (const BasicBlock &B : V->Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::Ld && I.Space == AddressSpace::Global) {
        EXPECT_FALSE(I.Ty.isVector());
      }
}

//===----------------------------------------------------------------------===
// Launch configuration validation and EM behaviour
//===----------------------------------------------------------------------===

TEST(LaunchTest, RejectsBadConfigurations) {
  auto Prog = Program::compile(DivergentSrc).take();
  Device Dev(1 << 16);
  ParamBuilder Params;
  Params.u64(Dev.allocArray<uint32_t>(64));

  LaunchOptions BadWarp;
  BadWarp.MaxWarpSize = 3;
  auto R1 = Prog->launch(Dev, "dk", {1, 1, 1}, {64, 1, 1}, Params, BadWarp);
  ASSERT_FALSE(static_cast<bool>(R1));
  EXPECT_NE(R1.status().message().find("power of two"), std::string::npos);

  LaunchOptions TieNoStatic;
  TieNoStatic.ThreadInvariantElim = true;
  auto R2 =
      Prog->launch(Dev, "dk", {1, 1, 1}, {64, 1, 1}, Params, TieNoStatic);
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_NE(R2.status().message().find("static warp formation"),
            std::string::npos);

  auto R3 = Prog->launch(Dev, "missing", {1, 1, 1}, {64, 1, 1}, Params, {});
  ASSERT_FALSE(static_cast<bool>(R3));
  EXPECT_NE(R3.status().message().find("not registered"), std::string::npos);

  ParamBuilder TooFew;
  auto R4 = Prog->launch(Dev, "dk", {1, 1, 1}, {64, 1, 1}, TooFew, {});
  ASSERT_FALSE(static_cast<bool>(R4));
  EXPECT_NE(R4.status().message().find("parameter bytes"),
            std::string::npos);
}

TEST(LaunchTest, StatsAreConsistent) {
  auto Prog = Program::compile(DivergentSrc).take();
  Device Dev(1 << 16);
  ParamBuilder Params;
  Params.u64(Dev.allocArray<uint32_t>(256));
  LaunchOptions O;
  O.MaxWarpSize = 4;
  auto S = Prog->launch(Dev, "dk", {4, 1, 1}, {64, 1, 1}, Params, O).take();
  uint64_t FromHistogram = 0, Threads = 0;
  for (const auto &[Width, Count] : S.EntriesByWidth) {
    FromHistogram += Count;
    Threads += Width * Count;
  }
  EXPECT_EQ(FromHistogram, S.WarpEntries);
  EXPECT_EQ(Threads, S.ThreadEntries);
  EXPECT_EQ(S.BranchYields + S.BarrierYields + S.ExitYields, S.WarpEntries);
  EXPECT_GT(S.Counters.EMCycles, 0.0);
}

TEST(LaunchTest, TranslationCacheHitsAfterFirstCta) {
  auto Prog = Program::compile(DivergentSrc).take();
  Device Dev(1 << 16);
  ParamBuilder Params;
  Params.u64(Dev.allocArray<uint32_t>(1024));
  LaunchOptions O;
  O.MaxWarpSize = 4;
  (void)Prog->launch(Dev, "dk", {16, 1, 1}, {64, 1, 1}, Params, O).take();
  TranslationCache::Stats CS = Prog->translationCache().stats();
  // At most one miss per warp size (1, 2, 4 possible).
  EXPECT_LE(CS.Misses, 3u);
  EXPECT_GT(CS.Hits, CS.Misses);
}

TEST(LaunchTest, BarrierReleasesWhenAllLiveThreadsArrive) {
  // Only even threads reach the barrier; the odd threads exit. Kernels
  // with partial barrier participation are UB in CUDA; this runtime
  // defines the barrier to release once every *live* thread of the CTA
  // has arrived, so the launch completes instead of hanging.
  const char *Src = R"(
.kernel dead ()
{
  .reg .u32 %t, %b;
  .reg .pred %c;
entry:
  mov.u32 %t, %tid.x;
  and.u32 %b, %t, 1;
  setp.eq.u32 %c, %b, 0;
  @%c bra wait, skip;
wait:
  bar.sync;
  bra skip;
skip:
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  ParamBuilder Params;
  LaunchOptions O;
  O.MaxWarpSize = 4;
  auto S = Prog->launch(Dev, "dead", {1, 1, 1}, {8, 1, 1}, Params, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  EXPECT_EQ(S->BarrierYields, 1u);
  EXPECT_GT(S->ExitYields, 0u);
}

TEST(LaunchTest, WorkerCountDoesNotChangeResults) {
  // Same kernel, 1 worker vs 4 workers: identical memory and identical
  // per-CTA modeled totals (workers partition CTAs deterministically).
  auto RunWith = [&](unsigned Workers) {
    auto Prog = Program::compile(DivergentSrc).take();
    Device Dev(1 << 16);
    uint64_t Out = Dev.allocArray<uint32_t>(256);
    ParamBuilder Params;
    Params.u64(Out);
    LaunchOptions O;
    O.MaxWarpSize = 4;
    O.Workers = Workers;
    auto S = Prog->launch(Dev, "dk", {4, 1, 1}, {64, 1, 1}, Params, O);
    EXPECT_TRUE(static_cast<bool>(S));
    return Dev.download<uint32_t>(Out, 256);
  };
  EXPECT_EQ(RunWith(1), RunWith(4));
}

TEST(LaunchTest, CrossWidthResume) {
  // Threads yield from a width-4 binary and may resume in width-2 or
  // width-1 binaries; spill slots and entry IDs must agree. The divergent
  // kernel exercises odd/even splits (2+2) whose subsets re-enter at
  // smaller widths when the pool is nearly drained.
  auto Prog = Program::compile(DivergentSrc).take();
  Device Dev(1 << 16);
  uint64_t Out = Dev.allocArray<uint32_t>(64);
  ParamBuilder Params;
  Params.u64(Out);
  LaunchOptions O;
  O.MaxWarpSize = 4;
  O.Workers = 1;
  auto S = Prog->launch(Dev, "dk", {1, 1, 1}, {6, 1, 1}, Params, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  // Width histogram must include entries below 4 (6 threads cannot split
  // 3/3 into pure 4-warps after divergence).
  EXPECT_GT(S->EntriesByWidth.count(1) + S->EntriesByWidth.count(2), 0u);
  auto R = Dev.download<uint32_t>(Out, 6);
  for (uint32_t T = 0; T < 6; ++T)
    EXPECT_EQ(R[T], (T & 1) ? T * 3 : T * 5);
}

} // namespace
