# Smoke-checks the wall-clock bench harness: runs it at the smallest scale
# with one rep, then feeds the emitted JSON to bench_diff (diffed against
# itself), which both validates the JSON and must report a 1.000x geomean.
# The repeated-launch mode is exercised too (2 launches per mode), which
# drives at least one asynchronous stream launch end to end.
execute_process(COMMAND ${WALLCLOCK} ${OUT} 1 1 RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "wallclock_throughput exited with ${rc}")
endif()
execute_process(COMMAND ${WALLCLOCK} --launches 2 ${OUT}.launches.json 1
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "wallclock_throughput --launches exited with ${rc}")
endif()
execute_process(COMMAND ${BENCH_DIFF} ${OUT}.launches.json ${OUT}.launches.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE lout)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_diff on launches JSON exited with ${rc}")
endif()
if(NOT lout MATCHES "geomean speedup over [0-9]+ cells: 1\\.000x")
  message(FATAL_ERROR "bench_diff launches self-diff is not 1.000x:\n${lout}")
endif()
execute_process(COMMAND ${BENCH_DIFF} ${OUT} ${OUT}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_diff exited with ${rc}")
endif()
if(NOT out MATCHES "geomean speedup over [0-9]+ cells: 1\\.000x")
  message(FATAL_ERROR "bench_diff self-diff geomean is not 1.000x:\n${out}")
endif()
