//===- tests/transforms_test.cpp - Classical pass unit tests --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Printer.h"
#include "simtvec/ir/ScalarOps.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/transforms/Passes.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

Kernel &parseK(std::unique_ptr<Module> &Keep, const std::string &Src) {
  Keep = parseModuleOrDie(Src);
  return *Keep->kernels().front();
}

size_t countOpcode(const Kernel &K, Opcode Op) {
  size_t N = 0;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      N += I.Op == Op;
  return N;
}

//===----------------------------------------------------------------------===
// PredicateToSelect
//===----------------------------------------------------------------------===

TEST(PredicateToSelectTest, GuardedArithmeticBecomesSelect) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k ()
{
  .reg .u32 %x, %t;
  .reg .pred %c;
entry:
  mov.u32 %x, 1;
  mov.u32 %t, %tid.x;
  setp.eq.u32 %c, %t, 0;
  @%c add.u32 %x, %x, 5;
  ret;
}
)");
  EXPECT_TRUE(runPredicateToSelect(K));
  EXPECT_FALSE(verifyKernel(K).isError());
  EXPECT_EQ(countOpcode(K, Opcode::Selp), 1u);
  // No guarded non-branch instructions remain.
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op != Opcode::Bra)
        EXPECT_FALSE(I.Guard.isValid());
}

TEST(PredicateToSelectTest, GuardedStoreKeepsGuard) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %t;
  .reg .u64 %a;
  .reg .pred %c;
entry:
  mov.u32 %t, %tid.x;
  setp.eq.u32 %c, %t, 0;
  ld.param.u64 %a, [p];
  @%c st.global.u32 [%a], %t;
  ret;
}
)");
  runPredicateToSelect(K);
  EXPECT_FALSE(verifyKernel(K).isError());
  // The store is side-effecting: a select cannot express it.
  bool FoundGuardedStore = false;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::St && I.Guard.isValid())
        FoundGuardedStore = true;
  EXPECT_TRUE(FoundGuardedStore);
  EXPECT_EQ(countOpcode(K, Opcode::Selp), 0u);
}

TEST(PredicateToSelectTest, GuardedDivisionKeepsGuard) {
  // The trap-safety rule: op-then-select would execute the division on
  // EVERY lane, including ones whose guard exists precisely because their
  // divisor is zero. Guarded div/rem must survive the pass untouched.
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k ()
{
  .reg .u32 %x, %t, %d;
  .reg .pred %c;
entry:
  mov.u32 %x, 1;
  mov.u32 %t, %tid.x;
  mov.u32 %d, %t;
  setp.ne.u32 %c, %d, 0;
  @%c div.u32 %x, %t, %d;
  @%c rem.u32 %x, %t, %d;
  ret;
}
)");
  runPredicateToSelect(K);
  EXPECT_FALSE(verifyKernel(K).isError());
  EXPECT_EQ(countOpcode(K, Opcode::Selp), 0u);
  size_t GuardedTrapping = 0;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      if ((I.Op == Opcode::Div || I.Op == Opcode::Rem) && I.Guard.isValid())
        ++GuardedTrapping;
  EXPECT_EQ(GuardedTrapping, 2u);
}

TEST(PredicateToSelectTest, GuardedLoadKeepsGuard) {
  // Same rule for loads: the guard often encodes a bounds check, and an
  // unconditional load from the untaken lanes' address can fault.
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %t, %v;
  .reg .u64 %a;
  .reg .pred %c;
entry:
  mov.u32 %t, %tid.x;
  mov.u32 %v, 0;
  setp.lt.u32 %c, %t, 4;
  ld.param.u64 %a, [p];
  @%c ld.global.u32 %v, [%a];
  ret;
}
)");
  runPredicateToSelect(K);
  EXPECT_FALSE(verifyKernel(K).isError());
  EXPECT_EQ(countOpcode(K, Opcode::Selp), 0u);
  bool FoundGuardedLoad = false;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::Ld && I.Guard.isValid())
        FoundGuardedLoad = true;
  EXPECT_TRUE(FoundGuardedLoad);
}

TEST(PredicateToSelectTest, NegatedGuardSwapsSelectArms) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k ()
{
  .reg .u32 %x, %t;
  .reg .pred %c;
entry:
  mov.u32 %x, 1;
  mov.u32 %t, %tid.x;
  setp.eq.u32 %c, %t, 0;
  @!%c add.u32 %x, %x, 5;
  ret;
}
)");
  runPredicateToSelect(K);
  EXPECT_FALSE(verifyKernel(K).isError());
  // Negated guard: old value selected when the predicate holds.
  const Instruction *Sel = nullptr;
  for (const BasicBlock &B : K.Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::Selp)
        Sel = &I;
  ASSERT_NE(Sel, nullptr);
  EXPECT_EQ(Sel->Srcs[0].regId(), K.findReg("x"));
}

//===----------------------------------------------------------------------===
// BarrierSplit
//===----------------------------------------------------------------------===

TEST(BarrierSplitTest, SplitsMidBlockBarriers) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k ()
{
  .reg .u32 %x;
entry:
  mov.u32 %x, 1;
  bar.sync;
  add.u32 %x, %x, 1;
  bar.sync;
  add.u32 %x, %x, 2;
  ret;
}
)");
  EXPECT_TRUE(runBarrierSplit(K));
  EXPECT_FALSE(verifyKernel(K).isError());
  // Every barrier is now the last instruction before an unconditional
  // branch terminator.
  unsigned Barriers = 0;
  for (const BasicBlock &B : K.Blocks)
    for (size_t I = 0; I < B.Insts.size(); ++I)
      if (B.Insts[I].Op == Opcode::BarSync) {
        ++Barriers;
        ASSERT_EQ(I + 2, B.Insts.size());
        EXPECT_EQ(B.Insts.back().Op, Opcode::Bra);
        EXPECT_FALSE(B.Insts.back().Guard.isValid());
      }
  EXPECT_EQ(Barriers, 2u);
  EXPECT_EQ(K.Blocks.size(), 3u);
}

TEST(BarrierSplitTest, NoChangeWhenAlreadySplit) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k ()
{
a:
  bar.sync;
  bra b;
b:
  ret;
}
)");
  EXPECT_FALSE(runBarrierSplit(K));
}

//===----------------------------------------------------------------------===
// DeadCodeElim
//===----------------------------------------------------------------------===

TEST(DeadCodeElimTest, RemovesDeadChains) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %live, %dead1, %dead2;
  .reg .u64 %a;
entry:
  mov.u32 %dead1, 5;
  add.u32 %dead2, %dead1, 1;
  mov.u32 %live, 7;
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %live;
  ret;
}
)");
  EXPECT_TRUE(runDeadCodeElim(K));
  EXPECT_FALSE(verifyKernel(K).isError());
  EXPECT_EQ(K.Blocks[0].Insts.size(), 4u); // mov live, ld, st, ret
}

TEST(DeadCodeElimTest, KeepsSideEffects) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %old;
  .reg .u64 %a;
entry:
  ld.param.u64 %a, [p];
  atom.global.add.u32 %old, [%a], 1;
  ret;
}
)");
  // %old is dead but the atomic must stay.
  runDeadCodeElim(K);
  EXPECT_EQ(countOpcode(K, Opcode::AtomAdd), 1u);
}

TEST(DeadCodeElimTest, ValueLiveAcrossLoopKept) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %i, %acc;
  .reg .u64 %a;
  .reg .pred %c;
entry:
  mov.u32 %i, 0;
  mov.u32 %acc, 0;
  bra head;
head:
  add.u32 %acc, %acc, %i;
  add.u32 %i, %i, 1;
  setp.lt.u32 %c, %i, 10;
  @%c bra head, out;
out:
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %acc;
  ret;
}
)");
  size_t Before = K.instructionCount();
  runDeadCodeElim(K);
  EXPECT_EQ(K.instructionCount(), Before);
}

//===----------------------------------------------------------------------===
// ConstantFold
//===----------------------------------------------------------------------===

struct FoldCase {
  const char *Name;
  const char *Expr; ///< instruction producing %r (declared .u32)
  uint32_t Expect;
};

class ConstantFoldInt : public ::testing::TestWithParam<FoldCase> {};

TEST_P(ConstantFoldInt, FoldsToImmediate) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, std::string(R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %r;
  .reg .u64 %a;
entry:
  )") + GetParam().Expr + R"(
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %r;
  ret;
}
)");
  EXPECT_TRUE(runConstantFold(K));
  const Instruction &I = K.Blocks[0].Insts[0];
  EXPECT_EQ(I.Op, Opcode::Mov);
  ASSERT_TRUE(I.Srcs[0].isImm());
  EXPECT_EQ(static_cast<uint32_t>(I.Srcs[0].immBits()), GetParam().Expect);
}

INSTANTIATE_TEST_SUITE_P(
    Transforms, ConstantFoldInt,
    ::testing::Values(
        FoldCase{"Add", "add.u32 %r, 40, 2;", 42},
        FoldCase{"Sub", "sub.u32 %r, 40, 2;", 38},
        FoldCase{"Mul", "mul.u32 %r, 6, 7;", 42},
        FoldCase{"DivByZero", "div.u32 %r, 100, 0;", 0},
        FoldCase{"Rem", "rem.u32 %r, 17, 5;", 2},
        FoldCase{"Min", "min.u32 %r, 9, 4;", 4},
        FoldCase{"Max", "max.u32 %r, 9, 4;", 9},
        FoldCase{"And", "and.u32 %r, 12, 10;", 8},
        FoldCase{"Or", "or.u32 %r, 12, 10;", 14},
        FoldCase{"Xor", "xor.u32 %r, 12, 10;", 6},
        FoldCase{"Shl", "shl.u32 %r, 1, 5;", 32},
        FoldCase{"Shr", "shr.u32 %r, 64, 3;", 8},
        FoldCase{"Mad", "mad.u32 %r, 6, 7, 1;", 43},
        FoldCase{"Selp", "selp.u32 %r, 11, 22, 1;", 11}),
    [](const ::testing::TestParamInfo<FoldCase> &Info) {
      return Info.param.Name;
    });

TEST(ConstantFoldTest, FloatFold) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .f32 %f;
  .reg .u64 %a;
entry:
  mul.f32 %f, 3.0, 2.0;
  ld.param.u64 %a, [p];
  st.global.f32 [%a], %f;
  ret;
}
)");
  runConstantFold(K);
  const Instruction &I = K.Blocks[0].Insts[0];
  EXPECT_EQ(I.Op, Opcode::Mov);
  EXPECT_FLOAT_EQ(I.Srcs[0].immF32(), 6.0f);
}

TEST(ConstantFoldTest, SetpFoldsToPredImmediate) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .pred %c;
  .reg .u32 %r;
  .reg .u64 %a;
entry:
  setp.lt.u32 %c, 3, 5;
  selp.u32 %r, 1, 0, %c;
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %r;
  ret;
}
)");
  runConstantFold(K);
  const Instruction &I = K.Blocks[0].Insts[0];
  EXPECT_EQ(I.Op, Opcode::Mov);
  EXPECT_TRUE(I.Ty.isPred());
  EXPECT_EQ(I.Srcs[0].immBits(), 1u);
  EXPECT_FALSE(verifyKernel(K).isError());
}

TEST(ConstantFoldTest, DoesNotFoldRegisters) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %r, %t;
  .reg .u64 %a;
entry:
  mov.u32 %t, %tid.x;
  add.u32 %r, %t, 2;
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %r;
  ret;
}
)");
  EXPECT_FALSE(runConstantFold(K));
}

//===----------------------------------------------------------------------===
// LocalCSE
//===----------------------------------------------------------------------===

TEST(LocalCSETest, DeduplicatesPureExpressions) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %t, %x, %y, %sum;
  .reg .u64 %a;
entry:
  mov.u32 %t, %tid.x;
  add.u32 %x, %t, 5;
  add.u32 %y, %t, 5;
  add.u32 %sum, %x, %y;
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %sum;
  ret;
}
)");
  EXPECT_TRUE(runLocalCSE(K));
  runDeadCodeElim(K);
  EXPECT_FALSE(verifyKernel(K).isError());
  // One of the adds became a copy and was forwarded; the final add now
  // reads %x twice.
  size_t Adds = 0;
  for (const Instruction &I : K.Blocks[0].Insts)
    if (I.Op == Opcode::Add)
      ++Adds;
  EXPECT_EQ(Adds, 2u); // t+5 once, x+x once
}

TEST(LocalCSETest, RedefinitionInvalidates) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %t, %x, %y;
  .reg .u64 %a;
entry:
  mov.u32 %t, %tid.x;
  add.u32 %x, %t, 5;
  add.u32 %t, %t, 1;
  add.u32 %y, %t, 5;   // NOT the same value: %t changed
  add.u32 %x, %x, %y;
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %x;
  ret;
}
)");
  size_t AddsBefore = countOpcode(K, Opcode::Add);
  runLocalCSE(K);
  EXPECT_EQ(countOpcode(K, Opcode::Add), AddsBefore);
}

TEST(LocalCSETest, SelfIncrementNotFolded) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %x;
  .reg .u64 %a;
entry:
  mov.u32 %x, 1;
  add.u32 %x, %x, 1;
  add.u32 %x, %x, 1;   // must NOT be CSE'd with the previous add
  ld.param.u64 %a, [p];
  st.global.u32 [%a], %x;
  ret;
}
)");
  runLocalCSE(K);
  // CSE must NOT merge the two "x + 1" computations: the availability key
  // captures pre-definition operand versions.
  EXPECT_EQ(countOpcode(K, Opcode::Add), 2u);
  // With constant propagation plus folding the whole chain collapses to
  // the constant 3 — the correct value.
  runCleanupPipeline(K);
  const Instruction *St = nullptr;
  for (const Instruction &I : K.Blocks[0].Insts)
    if (I.Op == Opcode::St)
      St = &I;
  ASSERT_NE(St, nullptr);
  ASSERT_TRUE(St->Srcs[1].isImm());
  EXPECT_EQ(St->Srcs[1].immInt(), 3);
}

TEST(LocalCSETest, LoadsNeverValueNumbered) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %x, %y, %s;
  .reg .u64 %a;
entry:
  ld.param.u64 %a, [p];
  ld.global.u32 %x, [%a];
  ld.global.u32 %y, [%a];  // may observe a different value
  add.u32 %s, %x, %y;
  st.global.u32 [%a], %s;
  ret;
}
)");
  runLocalCSE(K);
  size_t GlobalLoads = 0;
  for (const Instruction &I : K.Blocks[0].Insts)
    if (I.Op == Opcode::Ld && I.Space == AddressSpace::Global)
      ++GlobalLoads;
  EXPECT_EQ(GlobalLoads, 2u);
}

TEST(CleanupPipelineTest, ConvergesAndPreservesVerification) {
  std::unique_ptr<Module> M;
  Kernel &K = parseK(M, R"(
.kernel k (.param .u64 p)
{
  .reg .u32 %a, %b, %c, %d;
  .reg .u64 %ptr;
entry:
  mov.u32 %a, 6;
  mul.u32 %b, %a, 7;
  mul.u32 %c, %a, 7;
  add.u32 %d, %b, %c;
  ld.param.u64 %ptr, [p];
  st.global.u32 [%ptr], %d;
  ret;
}
)");
  EXPECT_TRUE(runCleanupPipeline(K));
  EXPECT_FALSE(verifyKernel(K).isError());
  // Everything folds: the store's value operand becomes the constant 84.
  const Instruction *St = nullptr;
  for (const Instruction &I : K.Blocks[0].Insts)
    if (I.Op == Opcode::St)
      St = &I;
  ASSERT_NE(St, nullptr);
  // After folding+CSE+copy-prop the stored operand is either the constant
  // or a register defined by mov of the constant; accept both but require
  // the add/muls gone.
  EXPECT_EQ(countOpcode(K, Opcode::Mul), 0u);
  EXPECT_EQ(countOpcode(K, Opcode::Add), 0u);
}

} // namespace
