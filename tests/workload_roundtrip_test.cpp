//===- tests/workload_roundtrip_test.cpp - Dialect round trips ------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Broad-coverage checks over the whole workload suite's SVIR sources:
///  - every source parses, verifies, and survives print->parse->print with
///    a stable fixed point (dialect regressions show up here first);
///  - every specialized form (scalar, ws4, ws4+TIE) also round-trips
///    through the printer, covering the generated-code constructs
///    (schedulers, vector ops, spill/restore, switches);
///  - specializations across warp sizes agree on the spill layout and
///    entry table, the cross-width resume contract.
///
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Printer.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"
#include "simtvec/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

class WorkloadSource : public ::testing::TestWithParam<const Workload *> {};

TEST_P(WorkloadSource, SourceRoundTripsStably) {
  const Workload &W = *GetParam();
  auto M1OrErr = parseModule(W.Source);
  ASSERT_TRUE(static_cast<bool>(M1OrErr)) << M1OrErr.status().message();
  ASSERT_FALSE(verifyModule(**M1OrErr).isError())
      << verifyModule(**M1OrErr).message();
  std::string P1 = printModule(**M1OrErr);
  auto M2OrErr = parseModule(P1);
  ASSERT_TRUE(static_cast<bool>(M2OrErr)) << M2OrErr.status().message();
  EXPECT_EQ(printModule(**M2OrErr), P1);
}

TEST_P(WorkloadSource, SpecializationsRoundTrip) {
  const Workload &W = *GetParam();
  auto Prog = compileWorkload(W);
  struct Cfg {
    uint32_t WS;
    bool Tie;
  };
  for (Cfg C : {Cfg{1, false}, Cfg{4, false}, Cfg{4, true}}) {
    auto ExecOrErr = Prog->translationCache().get(
        {W.KernelName, C.WS, C.Tie, false, false});
    ASSERT_TRUE(static_cast<bool>(ExecOrErr))
        << ExecOrErr.status().message();
    const Kernel &K = (*ExecOrErr)->kernel();
    std::string P1 = printKernel(K);
    auto MOrErr = parseModule(P1);
    ASSERT_TRUE(static_cast<bool>(MOrErr))
        << W.Name << " ws" << C.WS << ": " << MOrErr.status().message();
    const Kernel *K2 = (*MOrErr)->kernels().front().get();
    ASSERT_FALSE(verifyKernel(*K2).isError()) << verifyKernel(*K2).message();
    EXPECT_EQ(printKernel(*K2), P1) << W.Name << " ws" << C.WS;
    EXPECT_EQ(K2->WarpSize, C.WS);
  }
}

TEST_P(WorkloadSource, WidthsAgreeOnResumeContract) {
  const Workload &W = *GetParam();
  auto Prog = compileWorkload(W);
  auto E1 = Prog->translationCache().get({W.KernelName, 1, false, false,
                                          false});
  auto E2 = Prog->translationCache().get({W.KernelName, 2, false, false,
                                          false});
  auto E4 = Prog->translationCache().get({W.KernelName, 4, false, false,
                                          false});
  ASSERT_TRUE(static_cast<bool>(E1) && static_cast<bool>(E2) &&
              static_cast<bool>(E4));
  // A thread may yield from one width and resume in another: the spill
  // area and the entry table must agree.
  EXPECT_EQ((*E1)->kernel().SpillBytes, (*E4)->kernel().SpillBytes);
  EXPECT_EQ((*E2)->kernel().SpillBytes, (*E4)->kernel().SpillBytes);
  EXPECT_EQ((*E1)->kernel().EntryBlocks.size(),
            (*E4)->kernel().EntryBlocks.size());
  EXPECT_EQ((*E2)->kernel().EntryBlocks.size(),
            (*E4)->kernel().EntryBlocks.size());
}

std::vector<const Workload *> allWorkloadPtrs() {
  std::vector<const Workload *> Ptrs;
  for (const Workload &W : allWorkloads())
    Ptrs.push_back(&W);
  return Ptrs;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadSource, ::testing::ValuesIn(allWorkloadPtrs()),
    [](const ::testing::TestParamInfo<const Workload *> &Info) {
      std::string Name = Info.param->Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
