//===- tests/graph_test.cpp - Kernel graph capture/instantiate/replay -----===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Differential suite for runtime/Graph.h: a captured (or built) graph's
/// replay must be indistinguishable from the equivalent eager stream-op
/// sequence — same outputs, bit-identical LaunchStats, same deferred-error
/// behaviour — while performing none of the per-launch resolution work
/// (zero translation-cache misses, zero parameter re-validation; asserted
/// via the tc.* / rt.* metrics). The concurrent-replay test runs under
/// SIMTVEC_SANITIZE=thread via tools/tsan_check.sh.
///
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Graph.h"

#include "simtvec/support/Trace.h"

#include <gtest/gtest.h>

#include <thread>

using namespace simtvec;

namespace {

const char *ScaleSrc = R"(
.kernel scale (.param .u64 buf, .param .u32 n)
{
  .reg .u32 %i, %n, %v;
  .reg .u64 %p, %off;
  .reg .pred %q;
entry:
  mov.u32 %i, %tid.x;
  mov.u32 %n, %ntid.x;
  mul.u32 %n, %n, %ctaid.x;
  add.u32 %i, %i, %n;
  ld.param.u32 %n, [n];
  setp.ge.u32 %q, %i, %n;
  @%q bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %p, [buf];
  add.u64 %p, %p, %off;
  ld.global.u32 %v, [%p];
  mad.u32 %v, %v, 2, 1;
  st.global.u32 [%p], %v;
  bra done;
done:
  ret;
}
)";

/// Every thread increments one global counter — the only global-memory
/// traffic is atom.global.add (mutex-striped on the host), so concurrent
/// replays of one graph against one device are data-race-free by design.
const char *AccumSrc = R"(
.kernel accum (.param .u64 acc)
{
  .reg .u32 %old;
  .reg .u64 %p;
entry:
  ld.param.u64 %p, [acc];
  atom.global.add.u32 %old, [%p], 1;
  ret;
}
)";

uint64_t counterNow(const char *Name) {
  return MetricsRegistry::global().snapshot().counterValue(Name);
}

/// Bit-identity over every LaunchStats field the eager path settles.
void expectStatsIdentical(const LaunchStats &Got, const LaunchStats &Ref) {
  EXPECT_EQ(Got.Counters.SubkernelCycles, Ref.Counters.SubkernelCycles);
  EXPECT_EQ(Got.Counters.YieldCycles, Ref.Counters.YieldCycles);
  EXPECT_EQ(Got.Counters.EMCycles, Ref.Counters.EMCycles);
  EXPECT_EQ(Got.Counters.InstsExecuted, Ref.Counters.InstsExecuted);
  EXPECT_EQ(Got.Counters.Flops, Ref.Counters.Flops);
  EXPECT_EQ(Got.MaxWorkerCycles, Ref.MaxWorkerCycles);
  EXPECT_EQ(Got.EntriesByWidth, Ref.EntriesByWidth);
  EXPECT_EQ(Got.WarpEntries, Ref.WarpEntries);
  EXPECT_EQ(Got.ThreadEntries, Ref.ThreadEntries);
  EXPECT_EQ(Got.BranchYields, Ref.BranchYields);
  EXPECT_EQ(Got.BarrierYields, Ref.BarrierYields);
  EXPECT_EQ(Got.ExitYields, Ref.ExitYields);
}

constexpr uint32_t N = 1000;
constexpr Dim3 ScaleGrid{(N + 63) / 64, 1, 1};
constexpr Dim3 ScaleBlock{64, 1, 1};

std::vector<uint32_t> scaleInput() {
  std::vector<uint32_t> In(N);
  for (uint32_t I = 0; I < N; ++I)
    In[I] = I * 3 + 7;
  return In;
}

/// The eager reference: copy-in, two chained launches, copy-out on one
/// stream. Returns the two launches' stats and the output vector.
struct EagerRef {
  LaunchStats S1, S2;
  std::vector<uint32_t> Out;
};

EagerRef runEagerReference(Program &Prog, Device &Dev, uint64_t D,
                           const std::vector<uint32_t> &In) {
  Params P;
  P.u64(D).u32(N);
  std::vector<uint32_t> Out(N, 0);
  Stream S;
  Dev.copyToDeviceAsync(S, D, In.data(), N * sizeof(uint32_t));
  LaunchFuture F1 = Prog.launchAsync(S, Dev, "scale", ScaleGrid, ScaleBlock, P);
  LaunchFuture F2 = Prog.launchAsync(S, Dev, "scale", ScaleGrid, ScaleBlock, P);
  Dev.copyFromDeviceAsync(S, Out.data(), D, N * sizeof(uint32_t));
  Status E = S.synchronize();
  EXPECT_FALSE(E.isError()) << E.message();
  EagerRef R;
  auto R1 = F1.get(), R2 = F2.get();
  EXPECT_TRUE(static_cast<bool>(R1)) << R1.status().message();
  EXPECT_TRUE(static_cast<bool>(R2)) << R2.status().message();
  if (R1)
    R.S1 = *R1;
  if (R2)
    R.S2 = *R2;
  R.Out = std::move(Out);
  return R;
}

TEST(Graph, BuilderReplayMatchesEagerStreams) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> In = scaleInput();
  EagerRef Ref = runEagerReference(*Prog, Dev, D, In);

  // The same DAG, built explicitly: copy-in -> launch -> launch -> copy-out.
  Params P;
  P.u64(D).u32(N);
  std::vector<uint32_t> Out(N, 0);
  Graph G;
  auto CIn = G.addCopyToDevice(Dev, D, In.data(), N * sizeof(uint32_t));
  auto L1 = G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P);
  auto L2 = G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P);
  auto COut = G.addCopyFromDevice(Dev, Out.data(), D, N * sizeof(uint32_t));
  ASSERT_FALSE(G.addDependency(CIn, L1).isError());
  ASSERT_FALSE(G.addDependency(L1, L2).isError());
  ASSERT_FALSE(G.addDependency(L2, COut).isError());
  EXPECT_EQ(G.size(), 4u);

  auto ExecOrErr = G.instantiate(*Prog);
  ASSERT_TRUE(static_cast<bool>(ExecOrErr)) << ExecOrErr.status().message();
  GraphExec Exec = *ExecOrErr;
  EXPECT_EQ(Exec.size(), 4u);

  Stream S;
  std::vector<LaunchFuture> Futures = Exec.launch(S);
  ASSERT_EQ(Futures.size(), 2u);
  Status E = S.synchronize();
  ASSERT_FALSE(E.isError()) << E.message();
  auto R1 = Futures[0].get(), R2 = Futures[1].get();
  ASSERT_TRUE(static_cast<bool>(R1)) << R1.status().message();
  ASSERT_TRUE(static_cast<bool>(R2)) << R2.status().message();
  expectStatsIdentical(*R1, Ref.S1);
  expectStatsIdentical(*R2, Ref.S2);
  EXPECT_EQ(Out, Ref.Out);
}

TEST(Graph, CaptureReplayMatchesEagerStreams) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> In = scaleInput();
  EagerRef Ref = runEagerReference(*Prog, Dev, D, In);

  // Capture the identical submission sequence; stream order becomes the
  // node chain.
  Params P;
  P.u64(D).u32(N);
  std::vector<uint32_t> Out(N, 0);
  Graph G;
  Stream Cap;
  ASSERT_FALSE(Cap.beginCapture(G).isError());
  EXPECT_TRUE(Cap.capturing());
  Dev.copyToDeviceAsync(Cap, D, In.data(), N * sizeof(uint32_t));
  LaunchFuture Captured =
      Prog->launchAsync(Cap, Dev, "scale", ScaleGrid, ScaleBlock, P);
  Prog->launchAsync(Cap, Dev, "scale", ScaleGrid, ScaleBlock, P);
  Dev.copyFromDeviceAsync(Cap, Out.data(), D, N * sizeof(uint32_t));
  ASSERT_FALSE(Cap.endCapture().isError());
  EXPECT_FALSE(Cap.capturing());
  EXPECT_EQ(G.size(), 4u);

  // A captured launch executes nothing and owns no result: its future is
  // empty, and waiting on it is an error, not a hang.
  Status CapE = Captured.get().status();
  ASSERT_TRUE(CapE.isError());
  EXPECT_NE(CapE.message().find("empty LaunchFuture"), std::string::npos);

  auto ExecOrErr = G.instantiate(*Prog);
  ASSERT_TRUE(static_cast<bool>(ExecOrErr)) << ExecOrErr.status().message();

  Stream S;
  std::vector<LaunchFuture> Futures = ExecOrErr->launch(S);
  ASSERT_EQ(Futures.size(), 2u);
  ASSERT_FALSE(S.synchronize().isError());
  auto R1 = Futures[0].get(), R2 = Futures[1].get();
  ASSERT_TRUE(static_cast<bool>(R1)) << R1.status().message();
  ASSERT_TRUE(static_cast<bool>(R2)) << R2.status().message();
  expectStatsIdentical(*R1, Ref.S1);
  expectStatsIdentical(*R2, Ref.S2);
  EXPECT_EQ(Out, Ref.Out);
}

TEST(Graph, RepeatedReplaysAreWarmAndBitIdentical) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> In = scaleInput();

  Params P;
  P.u64(D).u32(N);
  std::vector<uint32_t> Out(N, 0);
  Graph G;
  auto CIn = G.addCopyToDevice(Dev, D, In.data(), N * sizeof(uint32_t));
  auto L = G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P);
  auto COut = G.addCopyFromDevice(Dev, Out.data(), D, N * sizeof(uint32_t));
  ASSERT_FALSE(G.addDependency(CIn, L).isError());
  ASSERT_FALSE(G.addDependency(L, COut).isError());
  auto ExecOrErr = G.instantiate(*Prog);
  ASSERT_TRUE(static_cast<bool>(ExecOrErr)) << ExecOrErr.status().message();
  GraphExec Exec = *ExecOrErr;

  // Instantiation already resolved everything; from here on the
  // translation cache must see no misses or compiles and the runtime no
  // parameter validation, no matter how many times the graph replays.
  uint64_t Misses0 = counterNow("tc.misses");
  uint64_t Compiles0 = counterNow("tc.compile");
  uint64_t Validate0 = counterNow("rt.param_validate");
  uint64_t Replays0 = counterNow("graph.replays");

  constexpr int Reps = 5;
  LaunchStats First;
  std::vector<uint32_t> FirstOut;
  for (int R = 0; R < Reps; ++R) {
    Stream S;
    std::vector<LaunchFuture> F = Exec.launch(S);
    ASSERT_EQ(F.size(), 1u);
    ASSERT_FALSE(S.synchronize().isError());
    auto Stats = F[0].get();
    ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.status().message();
    if (R == 0) {
      First = *Stats;
      FirstOut = Out;
    } else {
      // The copy-in node resets the buffer, so replays are bit-identical
      // in outputs as well as stats.
      expectStatsIdentical(*Stats, First);
      EXPECT_EQ(Out, FirstOut);
    }
  }

  EXPECT_EQ(counterNow("tc.misses"), Misses0);
  EXPECT_EQ(counterNow("tc.compile"), Compiles0);
  EXPECT_EQ(counterNow("rt.param_validate"), Validate0);
  EXPECT_EQ(counterNow("graph.replays"), Replays0 + Reps);
}

TEST(Graph, DeferredErrorsMatchStreamSemantics) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> In = scaleInput();

  // An out-of-range copy node plus an *independent* launch chain: the bad
  // node becomes the stream's deferred error, and the rest of the graph
  // still runs — exactly like eager stream ops.
  Params P;
  P.u64(D).u32(N);
  std::vector<uint32_t> Out(N, 0);
  std::vector<std::byte> BadHost(64);
  Graph G;
  G.addCopyFromDevice(Dev, BadHost.data(), Dev.size() - 8, BadHost.size());
  auto CIn = G.addCopyToDevice(Dev, D, In.data(), N * sizeof(uint32_t));
  auto L = G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P);
  auto COut = G.addCopyFromDevice(Dev, Out.data(), D, N * sizeof(uint32_t));
  G.addDependency(CIn, L);
  G.addDependency(L, COut);

  auto ExecOrErr = G.instantiate(*Prog);
  ASSERT_TRUE(static_cast<bool>(ExecOrErr)) << ExecOrErr.status().message();
  Stream S;
  std::vector<LaunchFuture> F = ExecOrErr->launch(S);
  ASSERT_EQ(F.size(), 1u);
  Status E = S.synchronize();
  ASSERT_TRUE(E.isError());
  EXPECT_NE(E.message().find("out of range"), std::string::npos);
  // The deferred error is cleared once reported, and the independent chain
  // completed regardless.
  EXPECT_FALSE(S.synchronize().isError());
  EXPECT_FALSE(F[0].wait().isError());
  for (uint32_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], In[I] * 2 + 1) << "element " << I;
}

TEST(Graph, InstantiateRejectsWhatEagerSubmissionRejects) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  Params P;
  P.u64(D).u32(N);

  {
    // Bad warp width: same diagnostic as launchAsync's submission check.
    Graph G;
    LaunchOptions Bad;
    Bad.MaxWarpSize = 3;
    G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P, Bad);
    auto E = G.instantiate(*Prog);
    ASSERT_FALSE(static_cast<bool>(E));
    EXPECT_NE(E.status().message().find("power of two"), std::string::npos);
  }
  {
    // Parameter-signature mismatch: validated once, at instantiate.
    Graph G;
    Params Wrong;
    Wrong.u32(7);
    G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, Wrong);
    auto E = G.instantiate(*Prog);
    ASSERT_FALSE(static_cast<bool>(E));
    EXPECT_NE(E.status().message().find("parameter"), std::string::npos);
  }
  {
    // Unknown kernel.
    Graph G;
    G.addLaunch(Dev, "nope", ScaleGrid, ScaleBlock, P);
    EXPECT_FALSE(static_cast<bool>(G.instantiate(*Prog)));
  }
  {
    // Dependency cycle (only expressible through the builder).
    Graph G;
    auto A = G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P);
    auto B = G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P);
    ASSERT_FALSE(G.addDependency(A, B).isError());
    ASSERT_FALSE(G.addDependency(B, A).isError());
    auto E = G.instantiate(*Prog);
    ASSERT_FALSE(static_cast<bool>(E));
    EXPECT_NE(E.status().message().find("cycle"), std::string::npos);
  }
  {
    // Bad builder edges.
    Graph G;
    auto A = G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P);
    EXPECT_TRUE(G.addDependency(A, A).isError());
    EXPECT_TRUE(G.addDependency(A, 99).isError());
  }
}

TEST(Graph, CaptureMisuseIsReported) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  Params P;
  P.u64(D).u32(N);

  {
    // endCapture without beginCapture.
    Stream S;
    EXPECT_TRUE(S.endCapture().isError());
  }
  {
    // Double beginCapture on one stream.
    Graph G1, G2;
    Stream S;
    ASSERT_FALSE(S.beginCapture(G1).isError());
    EXPECT_TRUE(S.beginCapture(G2).isError());
    EXPECT_FALSE(S.endCapture().isError());
  }
  {
    // synchronize during capture invalidates it.
    Graph G;
    Stream S;
    ASSERT_FALSE(S.beginCapture(G).isError());
    Prog->launchAsync(S, Dev, "scale", ScaleGrid, ScaleBlock, P);
    EXPECT_TRUE(S.synchronize().isError());
    EXPECT_FALSE(S.capturing()); // the capture ended with the error
    auto E = G.instantiate(*Prog);
    ASSERT_FALSE(static_cast<bool>(E));
    EXPECT_NE(E.status().message().find("synchronize"), std::string::npos);
  }
  {
    // Instantiating while a capture is still active.
    Graph G;
    Stream S;
    ASSERT_FALSE(S.beginCapture(G).isError());
    Prog->launchAsync(S, Dev, "scale", ScaleGrid, ScaleBlock, P);
    auto E = G.instantiate(*Prog);
    ASSERT_FALSE(static_cast<bool>(E));
    EXPECT_NE(E.status().message().find("capture"), std::string::npos);
    EXPECT_FALSE(S.endCapture().isError());
    // After endCapture the same graph instantiates fine.
    EXPECT_TRUE(static_cast<bool>(G.instantiate(*Prog)));
  }
  {
    // Waiting on an event that was not recorded in this capture.
    Graph G;
    Stream S;
    Event Foreign;
    ASSERT_FALSE(S.beginCapture(G).isError());
    S.waitEvent(Foreign);
    Status E = S.endCapture();
    ASSERT_TRUE(E.isError());
    EXPECT_NE(E.message().find("not recorded"), std::string::npos);
    EXPECT_FALSE(static_cast<bool>(G.instantiate(*Prog)));
  }
}

TEST(Graph, MultiStreamCaptureJoinsThroughEvents) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> In = scaleInput();
  Params P;
  P.u64(D).u32(N);
  std::vector<uint32_t> Out(N, 0);

  // Fork/join across two capturing streams: A copies in and launches,
  // records an event; B joins on the event, launches again, copies out.
  // The event becomes a graph edge, so replay must order B's launch after
  // A's — observable as out = (in*2+1)*2+1.
  Graph G;
  Stream A, B;
  Event Join;
  ASSERT_FALSE(A.beginCapture(G).isError());
  ASSERT_FALSE(B.beginCapture(G).isError());
  Dev.copyToDeviceAsync(A, D, In.data(), N * sizeof(uint32_t));
  Prog->launchAsync(A, Dev, "scale", ScaleGrid, ScaleBlock, P);
  Join.record(A);
  B.waitEvent(Join);
  Prog->launchAsync(B, Dev, "scale", ScaleGrid, ScaleBlock, P);
  Dev.copyFromDeviceAsync(B, Out.data(), D, N * sizeof(uint32_t));
  ASSERT_FALSE(A.endCapture().isError());
  ASSERT_FALSE(B.endCapture().isError());
  EXPECT_EQ(G.size(), 4u);

  auto ExecOrErr = G.instantiate(*Prog);
  ASSERT_TRUE(static_cast<bool>(ExecOrErr)) << ExecOrErr.status().message();
  for (int R = 0; R < 3; ++R) {
    Stream S;
    std::vector<LaunchFuture> F = ExecOrErr->launch(S);
    ASSERT_EQ(F.size(), 2u);
    ASSERT_FALSE(S.synchronize().isError());
    ASSERT_FALSE(F[0].wait().isError());
    ASSERT_FALSE(F[1].wait().isError());
    for (uint32_t I = 0; I < N; ++I)
      ASSERT_EQ(Out[I], (In[I] * 2 + 1) * 2 + 1) << "element " << I;
  }
}

TEST(Graph, AutoWidthCommitsAtInstantiate) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> In = scaleInput();
  Params P;
  P.u64(D).u32(N);

  LaunchOptions Auto;
  Auto.Policy = LaunchOptions::WidthPolicy::Auto;
  Graph G;
  auto CIn = G.addCopyToDevice(Dev, D, In.data(), N * sizeof(uint32_t));
  auto L = G.addLaunch(Dev, "scale", ScaleGrid, ScaleBlock, P, Auto);
  ASSERT_FALSE(G.addDependency(CIn, L).isError());
  auto ExecOrErr = G.instantiate(*Prog);
  ASSERT_TRUE(static_cast<bool>(ExecOrErr)) << ExecOrErr.status().message();

  // The width was committed once at instantiation: every replay runs the
  // same frozen specialization and reports bit-identical stats (eager Auto
  // launches may move between widths as the autotuner explores).
  LaunchStats First;
  for (int R = 0; R < 4; ++R) {
    Stream S;
    std::vector<LaunchFuture> F = ExecOrErr->launch(S);
    ASSERT_FALSE(S.synchronize().isError());
    auto Stats = F[0].get();
    ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.status().message();
    EXPECT_EQ(Stats->EntriesByWidth.size(), 1u)
        << "a committed width forms warps at one width only";
    if (R == 0)
      First = *Stats;
    else
      expectStatsIdentical(*Stats, First);
  }
}

TEST(Graph, ConcurrentReplaysOnFourStreams) {
  auto Prog = Program::compile(AccumSrc).take();
  Device Dev(1 << 16);
  uint64_t Acc = Dev.alloc(16);
  Dev.memset(Acc, 0, 16);
  Params P;
  P.u64(Acc);

  // One GraphExec, three chained launches, replayed concurrently from four
  // host threads on four streams against one device. All global-memory
  // traffic is atomic, so the replays are free to interleave; the final
  // counter value proves every node of every replay ran exactly once.
  constexpr Dim3 Grid{2, 1, 1};
  constexpr Dim3 Block{32, 1, 1};
  constexpr int Chain = 3;
  Graph G;
  Graph::NodeId Prev = 0;
  for (int I = 0; I < Chain; ++I) {
    Graph::NodeId Id = G.addLaunch(Dev, "accum", Grid, Block, P);
    if (I > 0) {
      ASSERT_FALSE(G.addDependency(Prev, Id).isError());
    }
    Prev = Id;
  }
  auto ExecOrErr = G.instantiate(*Prog);
  ASSERT_TRUE(static_cast<bool>(ExecOrErr)) << ExecOrErr.status().message();
  GraphExec Exec = *ExecOrErr;

  constexpr int NumStreams = 4;
  constexpr int Reps = 8;
  std::vector<std::thread> Hosts;
  Hosts.reserve(NumStreams);
  for (int T = 0; T < NumStreams; ++T)
    Hosts.emplace_back([&] {
      Stream S;
      for (int R = 0; R < Reps; ++R) {
        std::vector<LaunchFuture> F = Exec.launch(S);
        ASSERT_EQ(F.size(), static_cast<size_t>(Chain));
        Status E = S.synchronize();
        EXPECT_FALSE(E.isError()) << E.message();
        for (const LaunchFuture &LF : F)
          EXPECT_FALSE(LF.wait().isError());
      }
    });
  for (std::thread &H : Hosts)
    H.join();

  uint32_t Final = Dev.download<uint32_t>(Acc, 1)[0];
  EXPECT_EQ(Final, static_cast<uint32_t>(NumStreams * Reps * Chain) *
                       Grid.count() * Block.count());
}

} // namespace
