//===- tests/parser_test.cpp - SVIR parser unit tests ---------------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/ir/Printer.h"
#include "simtvec/ir/Verifier.h"
#include "simtvec/parser/Parser.h"

#include <gtest/gtest.h>

using namespace simtvec;

namespace {

std::string wrap(const std::string &Body) {
  return ".kernel k (.param .u64 p, .param .u32 n)\n{\n" + Body + "\n}\n";
}

TEST(ParserTest, RegisterRanges) {
  auto M = parseModuleOrDie(wrap(R"(
  .reg .f32 %f<3>;
  .reg .u32 %single;
entry:
  mov.f32 %f0, 0.0;
  mov.f32 %f1, 1.0;
  mov.f32 %f2, 2.0;
  ret;)"));
  const Kernel *K = M->findKernel("k");
  EXPECT_TRUE(K->findReg("f0").isValid());
  EXPECT_TRUE(K->findReg("f2").isValid());
  EXPECT_FALSE(K->findReg("f3").isValid());
  EXPECT_TRUE(K->findReg("single").isValid());
}

TEST(ParserTest, ImmediateForms) {
  auto M = parseModuleOrDie(wrap(R"(
  .reg .f32 %f;
  .reg .u32 %u;
  .reg .s32 %s;
  .reg .f64 %d;
entry:
  mov.f32 %f, 1.5;
  mov.f32 %f, 0f40490FDB;
  mov.f64 %d, 0d400921FB54442D18;
  mov.u32 %u, 0x1F;
  mov.s32 %s, -42;
  mov.f32 %f, -2.5e3;
  ret;)"));
  const Kernel *K = M->findKernel("k");
  const auto &Insts = K->Blocks[0].Insts;
  EXPECT_FLOAT_EQ(Insts[1].Srcs[0].immF32(), 3.14159274f);
  EXPECT_DOUBLE_EQ(Insts[2].Srcs[0].immF64(), 3.141592653589793);
  EXPECT_EQ(Insts[3].Srcs[0].immInt(), 0x1F);
  EXPECT_EQ(Insts[4].Srcs[0].immInt(), -42);
  EXPECT_FLOAT_EQ(Insts[5].Srcs[0].immF32(), -2500.0f);
}

TEST(ParserTest, ImplicitFallThrough) {
  // A label following an unterminated block inserts "bra next".
  auto M = parseModuleOrDie(wrap(R"(
  .reg .u32 %a;
entry:
  mov.u32 %a, 1;
next:
  ret;)"));
  const Kernel *K = M->findKernel("k");
  ASSERT_EQ(K->Blocks.size(), 2u);
  const Instruction &T = K->Blocks[0].terminator();
  EXPECT_EQ(T.Op, Opcode::Bra);
  EXPECT_EQ(T.Target, 1u);
}

TEST(ParserTest, ConditionalBranchImplicitFallThrough) {
  auto M = parseModuleOrDie(wrap(R"(
  .reg .pred %p;
  .reg .u32 %a;
entry:
  mov.u32 %a, %tid.x;
  setp.eq.u32 %p, %a, 0;
  @%p bra target;
middle:
  ret;
target:
  ret;)"));
  const Kernel *K = M->findKernel("k");
  const Instruction &T = K->Blocks[0].terminator();
  EXPECT_EQ(T.Target, K->findBlock("target"));
  EXPECT_EQ(T.FalseTarget, K->findBlock("middle"));
}

TEST(ParserTest, ForwardReferences) {
  auto M = parseModuleOrDie(wrap(R"(
entry:
  bra later;
later:
  ret;)"));
  EXPECT_EQ(M->findKernel("k")->Blocks[0].terminator().Target, 1u);
}

TEST(ParserTest, CommentsAndWhitespace) {
  auto M = parseModuleOrDie(wrap(R"(
  // a comment
  .reg .u32 %a;   // trailing comment
entry:
  mov.u32 %a, 1; // another
  ret;)"));
  EXPECT_EQ(M->findKernel("k")->Blocks[0].Insts.size(), 2u);
}

TEST(ParserTest, MultipleKernels) {
  auto MOrErr = parseModule(R"(
.version 1.0
.kernel first () { entry: ret; }
.kernel second () { entry: ret; }
)");
  ASSERT_TRUE(static_cast<bool>(MOrErr)) << MOrErr.status().message();
  EXPECT_NE((*MOrErr)->findKernel("first"), nullptr);
  EXPECT_NE((*MOrErr)->findKernel("second"), nullptr);
}

TEST(ParserTest, NegativeAddressOffset) {
  auto M = parseModuleOrDie(wrap(R"(
  .reg .u64 %a;
  .reg .f32 %f;
entry:
  mov.u64 %a, 64;
  ld.global.f32 %f, [%a-4];
  ret;)"));
  EXPECT_EQ(M->findKernel("k")->Blocks[0].Insts[1].MemOffset, -4);
}

struct ParseErrorCase {
  const char *Name;
  const char *Source;
  const char *ExpectSubstring;
};

class ParserErrors : public ::testing::TestWithParam<ParseErrorCase> {};

TEST_P(ParserErrors, ProducesDiagnostic) {
  auto MOrErr = parseModule(GetParam().Source);
  ASSERT_FALSE(static_cast<bool>(MOrErr));
  EXPECT_NE(MOrErr.status().message().find(GetParam().ExpectSubstring),
            std::string::npos)
      << MOrErr.status().message();
}

INSTANTIATE_TEST_SUITE_P(
    Parser, ParserErrors,
    ::testing::Values(
        ParseErrorCase{"UnknownRegister",
                       ".kernel k () { entry: mov.u32 %r, 1; ret; }",
                       "unknown register"},
        ParseErrorCase{"UnknownInstruction",
                       ".kernel k () { entry: frobnicate.u32 %r; ret; }",
                       "unknown instruction"},
        ParseErrorCase{"UndefinedLabel",
                       ".kernel k () { entry: bra nowhere; }",
                       "undefined label"},
        ParseErrorCase{"DuplicateLabel",
                       ".kernel k () { a: ret; a: ret; }",
                       "duplicate label"},
        ParseErrorCase{"RedeclaredRegister",
                       ".kernel k () { .reg .u32 %r; .reg .f32 %r; "
                       "entry: ret; }",
                       "redeclared"},
        ParseErrorCase{"BadType",
                       ".kernel k () { .reg .q17 %r; entry: ret; }",
                       "unknown scalar kind"},
        ParseErrorCase{"MissingSemicolon",
                       ".kernel k () { .reg .u32 %r; entry: mov.u32 %r, 1 "
                       "ret; }",
                       "expected"},
        ParseErrorCase{"UnknownSymbol",
                       ".kernel k () { .reg .u32 %r; entry: "
                       "ld.param.u32 %r, [missing]; ret; }",
                       "unknown symbol"},
        ParseErrorCase{"UnknownDirective",
                       ".kernel k () { .frob 3; entry: ret; }",
                       "unknown directive"},
        ParseErrorCase{"MalformedHexFloat",
                       ".kernel k () { .reg .f32 %f; entry: "
                       "mov.f32 %f, 0f3F80; ret; }",
                       "malformed hex float"},
        ParseErrorCase{"EofInsideKernel", ".kernel k () { entry: ret;",
                       "unexpected end of input"},
        ParseErrorCase{"TwoTargetsUnconditional",
                       ".kernel k () { a: bra b, c; b: ret; c: ret; }",
                       "unconditional branch with two targets"},
        // Overflowing literals used to saturate silently (strtoull/strtod
        // clamp and only report through errno); now they are diagnostics.
        ParseErrorCase{"DecimalIntOverflow",
                       ".kernel k () { .reg .u64 %r; entry: "
                       "mov.u64 %r, 18446744073709551616; ret; }",
                       "does not fit in 64 bits"},
        ParseErrorCase{"HexIntOverflow",
                       ".kernel k () { .reg .u64 %r; entry: "
                       "mov.u64 %r, 0x1ffffffffffffffff; ret; }",
                       "hex integer literal does not fit in 64 bits"},
        ParseErrorCase{"FloatOverflow",
                       ".kernel k () { .reg .f64 %d; entry: "
                       "mov.f64 %d, 1.0e999; ret; }",
                       "overflows a double"}),
    [](const ::testing::TestParamInfo<ParseErrorCase> &Info) {
      return Info.param.Name;
    });

TEST(ParserTest, DiagnosticsCarryLineAndColumn) {
  auto MOrErr = parseModule(".kernel k ()\n{\nentry:\n  bogus.u32 %r;\n}\n");
  ASSERT_FALSE(static_cast<bool>(MOrErr));
  // The error is on line 4.
  EXPECT_EQ(MOrErr.status().message().substr(0, 2), "4:");
}

TEST(ParserTest, OverflowDiagnosticsCarryLineAndColumn) {
  auto MOrErr = parseModule(".kernel k ()\n{\n.reg .u64 %r;\nentry:\n"
                            "  mov.u64 %r, 99999999999999999999;\n  ret;\n"
                            "}\n");
  ASSERT_FALSE(static_cast<bool>(MOrErr));
  // Line 5, column 15: the literal itself, not the statement start.
  EXPECT_EQ(MOrErr.status().message().substr(0, 5), "5:15:")
      << MOrErr.status().message();
  EXPECT_NE(MOrErr.status().message().find("does not fit in 64 bits"),
            std::string::npos);
}

TEST(ParserTest, BoundaryLiteralsStillParse) {
  // The exact 64-bit boundary values must keep parsing (the overflow check
  // rejects only what strtoull would saturate).
  auto M = parseModuleOrDie(wrap(R"(
  .reg .u64 %a, %b;
entry:
  mov.u64 %a, 18446744073709551615;
  mov.u64 %b, 0xffffffffffffffff;
  ret;)"));
  EXPECT_NE(M->findKernel("k"), nullptr);
}

TEST(ParserTest, GuardForms) {
  auto M = parseModuleOrDie(wrap(R"(
  .reg .pred %p;
  .reg .u32 %a;
entry:
  mov.u32 %a, %tid.x;
  setp.eq.u32 %p, %a, 0;
  @%p st.global.u32 [p], %a;
  @!%p st.global.u32 [p+4], %a;
  ret;)" ));
  const Kernel *K = M->findKernel("k");
  EXPECT_FALSE(K->Blocks[0].Insts[2].GuardNegated);
  EXPECT_TRUE(K->Blocks[0].Insts[3].GuardNegated);
  EXPECT_TRUE(K->Blocks[0].Insts[2].Guard.isValid());
}

} // namespace
