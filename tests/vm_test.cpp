//===- tests/vm_test.cpp - Vector virtual machine unit tests --------------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"
#include "simtvec/support/Format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace simtvec;

namespace {

/// Runs a one-thread kernel whose first parameter is an output pointer;
/// returns the first 32-bit word written there. Aborts on launch error.
uint32_t run1(const std::string &Body, const std::string &Decls) {
  std::string Src = ".kernel t (.param .u64 out)\n{\n" + Decls +
                    "\nentry:\n" + Body + "\n  ret;\n}\n";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  uint64_t Out = Dev.allocArray<uint32_t>(4);
  ParamBuilder Params;
  Params.u64(Out);
  LaunchOptions O;
  O.MaxWarpSize = 1;
  auto S = Prog->launch(Dev, "t", {1, 1, 1}, {1, 1, 1}, Params, O);
  EXPECT_TRUE(static_cast<bool>(S)) << S.status().message();
  return Dev.download<uint32_t>(Out, 1)[0];
}

float run1f(const std::string &Body, const std::string &Decls) {
  uint32_t Bits = run1(Body, Decls);
  float F;
  std::memcpy(&F, &Bits, 4);
  return F;
}

std::string storeR(const char *Ty = "u32") {
  return formatString("  ld.param.u64 %%a, [out];\n  st.global.%s [%%a], "
                      "%%r;\n",
                      Ty);
}

TEST(VMSemantics, IntegerArithmetic) {
  std::string D = "  .reg .u32 %r;\n  .reg .u64 %a;";
  EXPECT_EQ(run1("  add.u32 %r, 40, 2;\n" + storeR(), D), 42u);
  EXPECT_EQ(run1("  sub.u32 %r, 2, 3;\n" + storeR(), D), 0xFFFFFFFFu);
  EXPECT_EQ(run1("  mul.u32 %r, 0x10000, 0x10000;\n" + storeR(), D), 0u);
  EXPECT_EQ(run1("  div.u32 %r, 7, 2;\n" + storeR(), D), 3u);
  EXPECT_EQ(run1("  rem.u32 %r, 7, 2;\n" + storeR(), D), 1u);
  EXPECT_EQ(run1("  not.u32 %r, 0;\n" + storeR(), D), 0xFFFFFFFFu);
}

TEST(VMSemantics, SignedArithmetic) {
  std::string D = "  .reg .s32 %r;\n  .reg .u64 %a;";
  EXPECT_EQ(run1("  div.s32 %r, -7, 2;\n" + storeR("s32"), D),
            static_cast<uint32_t>(-3));
  EXPECT_EQ(run1("  min.s32 %r, -5, 3;\n" + storeR("s32"), D),
            static_cast<uint32_t>(-5));
  EXPECT_EQ(run1("  max.s32 %r, -5, 3;\n" + storeR("s32"), D), 3u);
  EXPECT_EQ(run1("  abs.s32 %r, -9;\n" + storeR("s32"), D), 9u);
  EXPECT_EQ(run1("  neg.s32 %r, 4;\n" + storeR("s32"), D),
            static_cast<uint32_t>(-4));
  EXPECT_EQ(run1("  shr.s32 %r, -16, 2;\n" + storeR("s32"), D),
            static_cast<uint32_t>(-4));
}

TEST(VMSemantics, FloatArithmetic) {
  std::string D = "  .reg .f32 %r;\n  .reg .u64 %a;";
  EXPECT_FLOAT_EQ(run1f("  mad.f32 %r, 2.0, 3.0, 4.0;\n" + storeR("f32"), D),
                  10.0f);
  EXPECT_FLOAT_EQ(run1f("  div.f32 %r, 1.0, 4.0;\n" + storeR("f32"), D),
                  0.25f);
  EXPECT_FLOAT_EQ(run1f("  sqrt.f32 %r, 9.0;\n" + storeR("f32"), D), 3.0f);
  EXPECT_FLOAT_EQ(run1f("  rsqrt.f32 %r, 4.0;\n" + storeR("f32"), D), 0.5f);
  EXPECT_FLOAT_EQ(run1f("  rcp.f32 %r, 8.0;\n" + storeR("f32"), D), 0.125f);
  EXPECT_FLOAT_EQ(run1f("  ex2.f32 %r, 3.0;\n" + storeR("f32"), D), 8.0f);
  EXPECT_FLOAT_EQ(run1f("  lg2.f32 %r, 8.0;\n" + storeR("f32"), D), 3.0f);
  EXPECT_NEAR(run1f("  sin.f32 %r, 0.5;\n" + storeR("f32"), D),
              std::sin(0.5f), 1e-6f);
  EXPECT_NEAR(run1f("  cos.f32 %r, 0.5;\n" + storeR("f32"), D),
              std::cos(0.5f), 1e-6f);
}

TEST(VMSemantics, CompareAndSelect) {
  std::string D =
      "  .reg .u32 %r;\n  .reg .pred %p;\n  .reg .u64 %a;";
  EXPECT_EQ(run1("  setp.le.u32 %p, 3, 3;\n  selp.u32 %r, 7, 8, %p;\n" +
                     storeR(),
                 D),
            7u);
  EXPECT_EQ(run1("  setp.gt.s32 %p, -1, 0;\n  selp.u32 %r, 7, 8, %p;\n" +
                     storeR(),
                 D),
            8u);
  // Unsigned comparison: -1 as u32 is huge.
  EXPECT_EQ(run1("  setp.gt.u32 %p, 0xFFFFFFFF, 0;\n  selp.u32 %r, 7, 8, "
                 "%p;\n" +
                     storeR(),
                 D),
            7u);
}

TEST(VMSemantics, PredicateLogic) {
  std::string D = "  .reg .u32 %r;\n  .reg .pred %p, %q;\n  .reg .u64 %a;";
  EXPECT_EQ(run1("  setp.eq.u32 %p, 1, 1;\n  setp.eq.u32 %q, 1, 2;\n"
                 "  or.pred %p, %p, %q;\n  selp.u32 %r, 1, 0, %p;\n" +
                     storeR(),
                 D),
            1u);
  EXPECT_EQ(run1("  setp.eq.u32 %p, 1, 1;\n  not.pred %p, %p;\n"
                 "  selp.u32 %r, 1, 0, %p;\n" +
                     storeR(),
                 D),
            0u);
}

TEST(VMSemantics, Conversions) {
  std::string D = "  .reg .u32 %r;\n  .reg .s32 %s;\n  .reg .f32 %f;\n"
                  "  .reg .f64 %d;\n  .reg .u64 %a;";
  // f32 -> s32 truncation.
  EXPECT_EQ(run1("  mov.f32 %f, 3.7;\n  cvt.s32.f32 %s, %f;\n"
                 "  cvt.u32.s32 %r, %s;\n" +
                     storeR(),
                 D),
            3u);
  // negative truncation toward zero
  EXPECT_EQ(run1("  mov.f32 %f, -3.7;\n  cvt.s32.f32 %s, %f;\n"
                 "  cvt.u32.s32 %r, %s;\n" +
                     storeR(),
                 D),
            static_cast<uint32_t>(-3));
  // u32 -> f32 -> u32 round trip for exact values
  EXPECT_EQ(run1("  cvt.f32.u32 %f, 1000000;\n  cvt.u32.f32 %r, %f;\n" +
                     storeR(),
                 D),
            1000000u);
  // f32 <-> f64
  EXPECT_EQ(run1("  mov.f32 %f, 0.5;\n  cvt.f64.f32 %d, %f;\n"
                 "  cvt.f32.f64 %f, %d;\n  cvt.u32.f32 %r, %f;\n" +
                     storeR(),
                 D),
            0u);
}

TEST(VMSemantics, U8LoadsAndStores) {
  const char *Src = R"(
.kernel t (.param .u64 out)
{
  .reg .u32 %r, %b;
  .reg .u64 %a;
entry:
  ld.param.u64 %a, [out];
  mov.u32 %b, 0x1FF;       // truncates to 0xFF in memory
  st.global.u8 [%a+8], %b;
  ld.global.u8 %r, [%a+8];
  st.global.u32 [%a], %r;
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  uint64_t Out = Dev.allocArray<uint32_t>(4);
  ParamBuilder Params;
  Params.u64(Out);
  auto S = Prog->launch(Dev, "t", {1, 1, 1}, {1, 1, 1}, Params, {});
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  EXPECT_EQ(Dev.download<uint32_t>(Out, 1)[0], 0xFFu);
}

TEST(VMSemantics, SharedAndLocalSpacesAreDisjoint) {
  const char *Src = R"(
.kernel t (.param .u64 out)
{
  .shared .b8 smem[16];
  .local .b8 lmem[16];
  .reg .u32 %x, %y, %r;
  .reg .u64 %a;
entry:
  mov.u32 %x, 11;
  st.shared.u32 [smem], %x;
  mov.u32 %y, 22;
  st.local.u32 [lmem], %y;
  ld.shared.u32 %x, [smem];
  ld.local.u32 %y, [lmem];
  shl.u32 %r, %x, 8;
  or.u32 %r, %r, %y;
  ld.param.u64 %a, [out];
  st.global.u32 [%a], %r;
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  uint64_t Out = Dev.allocArray<uint32_t>(1);
  ParamBuilder Params;
  Params.u64(Out);
  auto S = Prog->launch(Dev, "t", {1, 1, 1}, {1, 1, 1}, Params, {});
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  EXPECT_EQ(Dev.download<uint32_t>(Out, 1)[0], (11u << 8) | 22u);
}

TEST(VMSemantics, LocalMemoryIsPerThread) {
  // Two threads write their tid to the same .local address; each must read
  // back its own value.
  const char *Src = R"(
.kernel t (.param .u64 out)
{
  .local .b8 lmem[4];
  .reg .u32 %t, %r;
  .reg .u64 %a, %off;
entry:
  mov.u32 %t, %tid.x;
  st.local.u32 [lmem], %t;
  bar.sync;
  ld.local.u32 %r, [lmem];
  ld.param.u64 %a, [out];
  cvt.u64.u32 %off, %t;
  shl.u64 %off, %off, 2;
  add.u64 %a, %a, %off;
  st.global.u32 [%a], %r;
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  uint64_t Out = Dev.allocArray<uint32_t>(8);
  ParamBuilder Params;
  Params.u64(Out);
  LaunchOptions O;
  O.MaxWarpSize = 4;
  auto S = Prog->launch(Dev, "t", {1, 1, 1}, {8, 1, 1}, Params, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  auto R = Dev.download<uint32_t>(Out, 8);
  for (uint32_t T = 0; T < 8; ++T)
    EXPECT_EQ(R[T], T);
}

TEST(VMSemantics, OutOfBoundsGlobalTraps) {
  const char *Src = R"(
.kernel t (.param .u64 out)
{
  .reg .u32 %r;
  .reg .u64 %a, %o;
entry:
  mov.u64 %a, 0xFFFFFFFF0;
  ld.global.u32 %r, [%a];
  // Keep %r live so DCE cannot delete the faulting load.
  ld.param.u64 %o, [out];
  st.global.u32 [%o], %r;
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  ParamBuilder Params;
  Params.u64(16);
  auto S = Prog->launch(Dev, "t", {1, 1, 1}, {1, 1, 1}, Params, {});
  ASSERT_FALSE(static_cast<bool>(S));
  EXPECT_NE(S.status().message().find("out-of-bounds"), std::string::npos);
}

TEST(VMSemantics, StoreToParamTraps) {
  const char *Src = R"(
.kernel t (.param .u64 out)
{
  .reg .u32 %r;
entry:
  mov.u32 %r, 1;
  st.param.u32 [out], %r;
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  ParamBuilder Params;
  Params.u64(0);
  auto S = Prog->launch(Dev, "t", {1, 1, 1}, {1, 1, 1}, Params, {});
  ASSERT_FALSE(static_cast<bool>(S));
  EXPECT_NE(S.status().message().find("read-only"), std::string::npos);
}

TEST(VMSemantics, AtomicsAccumulateAcrossThreads) {
  const char *Src = R"(
.kernel t (.param .u64 out)
{
  .reg .u32 %old, %one;
  .reg .u64 %a;
entry:
  ld.param.u64 %a, [out];
  mov.u32 %one, 1;
  atom.global.add.u32 %old, [%a], %one;
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  uint64_t Out = Dev.allocArray<uint32_t>(1);
  Dev.memset(Out, 0, 4);
  ParamBuilder Params;
  Params.u64(Out);
  LaunchOptions O;
  O.MaxWarpSize = 4;
  auto S = Prog->launch(Dev, "t", {4, 1, 1}, {64, 1, 1}, Params, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  EXPECT_EQ(Dev.download<uint32_t>(Out, 1)[0], 256u);
}

TEST(VMSemantics, SpecialRegistersReflectGeometry) {
  const char *Src = R"(
.kernel t (.param .u64 out)
{
  .reg .u32 %v, %idx;
  .reg .u64 %a, %off;
entry:
  // Store ntid.x*1000 + nctaid.x*100 + ctaid.y*10 + tid.z  once per thread
  mov.u32 %v, %ntid.x;
  mul.u32 %v, %v, 1000;
  mov.u32 %idx, %nctaid.x;
  mad.u32 %v, %idx, 100, %v;
  mov.u32 %idx, %ctaid.y;
  mad.u32 %v, %idx, 10, %v;
  add.u32 %v, %v, %tid.z;
  ld.param.u64 %a, [out];
  st.global.u32 [%a], %v;
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  uint64_t Out = Dev.allocArray<uint32_t>(1);
  ParamBuilder Params;
  Params.u64(Out);
  LaunchOptions O;
  O.Workers = 1;
  auto S = Prog->launch(Dev, "t", {3, 2, 1}, {5, 1, 2}, Params, O);
  ASSERT_TRUE(static_cast<bool>(S)) << S.status().message();
  // Last writer wins; all values share ntid/nctaid, ctaid.y in {0,1},
  // tid.z in {0,1}.
  uint32_t V = Dev.download<uint32_t>(Out, 1)[0];
  EXPECT_EQ(V / 1000, 5u);
  EXPECT_EQ((V / 100) % 10, 3u);
  EXPECT_LE((V / 10) % 10, 1u);
  EXPECT_LE(V % 10, 1u);
}

TEST(VMCostModel, FlopsCounted) {
  std::string D = "  .reg .f32 %r;\n  .reg .u64 %a;";
  // Use a thread-dependent operand so the folder cannot remove the mad.
  std::string Src = ".kernel t (.param .u64 out)\n{\n" + D +
                    "  .reg .u32 %t;\n"
                    "\nentry:\n  mov.u32 %t, %tid.x;\n"
                    "  cvt.f32.u32 %r, %t;\n"
                    "  mad.f32 %r, %r, 3.0, 4.0;\n" +
                    storeR("f32") + "  ret;\n}\n";
  auto Prog = Program::compile(Src).take();
  Device Dev(4096);
  uint64_t Out = Dev.allocArray<uint32_t>(1);
  ParamBuilder Params;
  Params.u64(Out);
  auto S = Prog->launch(Dev, "t", {1, 1, 1}, {1, 1, 1}, Params, {});
  ASSERT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S->Counters.Flops, 2u); // one executed mad = 2 flops
}

TEST(VMCostModel, CacheCountersTrackMisses) {
  // 64 threads load 64 consecutive floats: 4 lines -> 4 misses, 60 hits.
  const char *Src = R"(
.kernel t (.param .u64 buf)
{
  .reg .u32 %i;
  .reg .u64 %a, %off;
  .reg .f32 %x;
entry:
  mov.u32 %i, %tid.x;
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %a, [buf];
  add.u64 %a, %a, %off;
  ld.global.f32 %x, [%a];
  st.global.f32 [%a], %x;
  ret;
}
)";
  auto Prog = Program::compile(Src).take();
  Device Dev(8192);
  uint64_t Buf = Dev.allocArray<float>(64);
  ParamBuilder Params;
  Params.u64(Buf);
  LaunchOptions O;
  O.Workers = 1;
  auto S = Prog->launch(Dev, "t", {1, 1, 1}, {64, 1, 1}, Params, O);
  ASSERT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S->Counters.GlobalAccesses, 128u);
  // 256 bytes starting at a 16-byte-aligned (not line-aligned) address
  // span 5 lines; the stores hit the freshly loaded lines.
  EXPECT_EQ(S->Counters.GlobalMisses, 5u);
}

TEST(VMCostModel, DoublePumpingCostsMore) {
  // The same kernel at ws8 must model more issue cycles per warp-lane than
  // at ws4 for f32 vector work (width 8 needs two SSE ops).
  MachineModel M;
  Instruction I(Opcode::Add, Type::f32().withLanes(4));
  Instruction I8(Opcode::Add, Type::f32().withLanes(8));
  EXPECT_EQ(M.issueCost(I), 1.0);
  EXPECT_EQ(M.issueCost(I8), 2.0);
  EXPECT_EQ(M.physRegsFor(Type::f32().withLanes(8)), 2u);
  EXPECT_EQ(M.physRegsFor(Type::f64().withLanes(4)), 2u);
  EXPECT_EQ(M.physRegsFor(Type::f32()), 0u);
}

} // namespace
