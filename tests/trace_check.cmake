# End-to-end observability smoke: runs the wall-clock bench at the smallest
# scale with tracing and metrics enabled, then validates the captured Chrome
# trace with trace_dump --check (structure, required keys, per-tid monotone
# record times, closed spans) and sanity-checks the --metrics report.
execute_process(COMMAND ${WALLCLOCK} --metrics --trace ${OUT}.trace.json
    --launches 2 ${OUT} 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "wallclock_throughput --trace exited with ${rc}")
endif()
if(NOT out MATCHES "tc\\.hits")
  message(FATAL_ERROR "--metrics report lacks tc.hits:\n${out}")
endif()
if(NOT out MATCHES "launch\\.count")
  message(FATAL_ERROR "--metrics report lacks launch.count:\n${out}")
endif()
execute_process(COMMAND ${TRACE_DUMP} --check ${OUT}.trace.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE cout ERROR_VARIABLE cerr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_dump --check failed:\n${cout}${cerr}")
endif()
# The summary mode must also parse the same file.
execute_process(COMMAND ${TRACE_DUMP} ${OUT}.trace.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE dout)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_dump summary exited with ${rc}")
endif()
if(NOT dout MATCHES "em/X")
  message(FATAL_ERROR "trace has no execution-manager spans:\n${dout}")
endif()
