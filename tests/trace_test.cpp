//===- tests/trace_test.cpp - Tracing & metrics subsystem tests -----------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Covers the observability contracts (DESIGN.md §9): trace JSON
// well-formedness (parseable structure, per-thread monotone record times,
// spans closed by construction), the presence of the instrumented seams in
// a traced launch, MetricsRegistry reconciliation against the translation
// cache's own stats, and — the load-bearing one — LaunchStats being
// bit-identical with tracing on and off (tracing is host-side only; it must
// never perturb the modeled machine).
//
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"
#include "simtvec/support/Trace.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <set>
#include <string>

using namespace simtvec;

namespace {

const char *VecAddSrc = R"(
.kernel vecadd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .reg .u32 %i, %n;
  .reg .u64 %off, %pa, %pb, %pc;
  .reg .f32 %x, %y, %z;
  .reg .pred %p;

entry:
  mov.u32 %i, %tid.x;
  mov.u32 %n, %ntid.x;
  mul.u32 %n, %n, %ctaid.x;
  add.u32 %i, %i, %n;
  ld.param.u32 %n, [n];
  setp.ge.u32 %p, %i, %n;
  @%p bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %pa, [a];
  ld.param.u64 %pb, [b];
  ld.param.u64 %pc, [c];
  add.u64 %pa, %pa, %off;
  add.u64 %pb, %pb, %off;
  add.u64 %pc, %pc, %off;
  ld.global.f32 %x, [%pa];
  ld.global.f32 %y, [%pb];
  add.f32 %z, %x, %y;
  st.global.f32 [%pc], %z;
  bra done;
done:
  ret;
}
)";

struct VecAddFixture {
  Device Dev;
  std::unique_ptr<Program> Prog;
  uint64_t A, B, C;
  uint32_t N;
  Params P;

  explicit VecAddFixture(uint32_t N = 1024) : N(N) {
    auto ProgOrErr = Program::compile(VecAddSrc);
    EXPECT_TRUE(static_cast<bool>(ProgOrErr))
        << ProgOrErr.status().message();
    Prog = ProgOrErr.take();
    std::vector<float> HA(N), HB(N);
    for (uint32_t I = 0; I < N; ++I) {
      HA[I] = static_cast<float>(I);
      HB[I] = 2.0f * static_cast<float>(I);
    }
    A = Dev.allocArray<float>(N);
    B = Dev.allocArray<float>(N);
    C = Dev.allocArray<float>(N);
    Dev.upload(A, HA);
    Dev.upload(B, HB);
    P.u64(A).u64(B).u64(C).u32(N);
  }

  Expected<LaunchStats> launch(const LaunchOptions &O = {}) {
    return Prog->launch(Dev, "vecadd", {N / 256}, {256}, P, O);
  }
};

/// Record time of an event: spans hit the buffer at scope exit.
uint64_t recordTime(const trace::Event &E) {
  return E.Ph == trace::Kind::Span ? E.Ts + E.Dur : E.Ts;
}

TEST(TraceTest, SessionGating) {
  trace::startSession();
  EXPECT_TRUE(trace::enabled());
  trace::instant("gate_probe", "test", 7, "k");
  trace::endSession();
  EXPECT_FALSE(trace::enabled());

  bool Found = false;
  for (const trace::ThreadEvents &TE : trace::collect())
    for (const trace::Event &E : TE.Events)
      if (std::string(E.Name) == "gate_probe") {
        Found = true;
        EXPECT_EQ(E.A0, 7u);
      }
  EXPECT_TRUE(Found);

  // Disabled: instants are dropped at the hook.
  trace::instant("after_end", "test");
  for (const trace::ThreadEvents &TE : trace::collect())
    for (const trace::Event &E : TE.Events)
      EXPECT_NE(std::string(E.Name), "after_end");
}

TEST(TraceTest, TracedLaunchHasInstrumentedSeams) {
  VecAddFixture F;
  trace::startSession();
  auto Stats = F.launch();
  trace::endSession();
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.status().message();

  std::set<std::string> Names;
  for (const trace::ThreadEvents &TE : trace::collect()) {
    EXPECT_EQ(TE.Dropped, 0u);
    uint64_t Last = 0;
    for (const trace::Event &E : TE.Events) {
      Names.insert(E.Name);
      // Buffers are in per-thread record order.
      EXPECT_GE(recordTime(E), Last) << E.Name;
      Last = recordTime(E);
      if (E.Ph == trace::Kind::Span)
        EXPECT_GE(E.Dur, 0u);
    }
  }
  // The seams the tentpole instruments: launch/CTA spans, warp-formation
  // instants, a translation-cache event (cold miss + compile here), the
  // stream op the blocking launch runs through, and per-worker counters.
  EXPECT_TRUE(Names.count("launch"));
  EXPECT_TRUE(Names.count("cta"));
  EXPECT_TRUE(Names.count("warp_formation"));
  EXPECT_TRUE(Names.count("tc.miss") || Names.count("tc.hit"));
  EXPECT_TRUE(Names.count("tc.compile"));
  EXPECT_TRUE(Names.count("stream.op"));
  EXPECT_TRUE(Names.count("cycles.subkernel"));
}

TEST(TraceTest, JsonWellFormed) {
  VecAddFixture F;
  std::string Path = testing::TempDir() + "simtvec_trace_test.json";
  auto Stats = F.Prog->launchTraced(Path, F.Dev, "vecadd", {F.N / 256},
                                    {256}, F.P);
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.status().message();

  FILE *In = std::fopen(Path.c_str(), "r");
  ASSERT_NE(In, nullptr);
  std::string Text;
  char Buf[4096];
  for (size_t N; (N = std::fread(Buf, 1, sizeof(Buf), In)) > 0;)
    Text.append(Buf, N);
  std::fclose(In);
  std::remove(Path.c_str());

  ASSERT_FALSE(Text.empty());
  EXPECT_NE(Text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Text.find("\"name\":\"launch\""), std::string::npos);
  EXPECT_NE(Text.find("\"kernel\":\"vecadd\""), std::string::npos);
  EXPECT_NE(Text.find("\"droppedEvents\""), std::string::npos);

  // Structural sanity: balanced braces/brackets outside strings, and the
  // document is one object. (tools/trace_dump --check does the deep,
  // per-event validation in its own ctest job.)
  long Braces = 0, Brackets = 0;
  bool InString = false;
  for (size_t I = 0; I < Text.size(); ++I) {
    char Ch = Text[I];
    if (InString) {
      if (Ch == '\\')
        ++I;
      else if (Ch == '"')
        InString = false;
      continue;
    }
    if (Ch == '"')
      InString = true;
    else if (Ch == '{')
      ++Braces;
    else if (Ch == '}')
      --Braces;
    else if (Ch == '[')
      ++Brackets;
    else if (Ch == ']')
      --Brackets;
    EXPECT_GE(Braces, 0);
    EXPECT_GE(Brackets, 0);
  }
  EXPECT_FALSE(InString);
  EXPECT_EQ(Braces, 0);
  EXPECT_EQ(Brackets, 0);
}

TEST(TraceTest, MetricsReconcileWithCacheAndStats) {
  MetricsRegistry::global().reset();
  VecAddFixture F;
  LaunchOptions O;
  auto S1 = F.launch(O);
  ASSERT_TRUE(static_cast<bool>(S1)) << S1.status().message();
  auto S2 = F.launch(O); // warm: served from the cache / width memo
  ASSERT_TRUE(static_cast<bool>(S2)) << S2.status().message();

  TranslationCache::Stats TC = F.Prog->translationCache().stats();
  MetricsRegistry::Snapshot M = MetricsRegistry::global().snapshot();

  // The registry mirrors every Hits/Misses bump of this (sole since the
  // reset) translation cache, warm-memo hits included.
  EXPECT_EQ(M.counterValue("tc.hits"), TC.Hits);
  EXPECT_EQ(M.counterValue("tc.misses"), TC.Misses);
  EXPECT_GT(TC.Misses, 0u);
  EXPECT_GT(M.counterValue("tc.compile_nanos"), 0u);

  // Launch-level aggregates flushed by the execution manager.
  EXPECT_EQ(M.counterValue("launch.count"), 2u);
  EXPECT_EQ(M.counterValue("em.warp_entries"),
            S1->WarpEntries + S2->WarpEntries);
  EXPECT_EQ(M.counterValue("em.thread_entries"),
            S1->ThreadEntries + S2->ThreadEntries);
  EXPECT_EQ(M.counterValue("em.barrier_waits"),
            S1->BarrierYields + S2->BarrierYields);

  // Per-width warp counters sum to the width histogram totals.
  uint64_t ByWidth = 0;
  for (const auto &[Name, V] : M.Counters)
    if (Name.rfind("em.warps.w", 0) == 0)
      ByWidth += V;
  uint64_t Expected = 0;
  for (const auto &[W, N] : S1->EntriesByWidth)
    Expected += N;
  for (const auto &[W, N] : S2->EntriesByWidth)
    Expected += N;
  EXPECT_EQ(ByWidth, Expected);
}

TEST(TraceTest, StatsBitIdenticalWithTracingOnAndOff) {
  // Deterministic configuration (one worker) so two launches are exactly
  // repeatable; the assertion is that tracing introduces zero perturbation
  // of the modeled machine, down to the floating-point cycle counts.
  LaunchOptions O;
  O.Workers = 1;

  VecAddFixture F1;
  trace::endSession(); // in case SIMTVEC_TRACE started a session
  ASSERT_FALSE(trace::enabled());
  auto Off = F1.launch(O);
  ASSERT_TRUE(static_cast<bool>(Off)) << Off.status().message();

  VecAddFixture F2;
  trace::startSession();
  LaunchOptions OT = O;
  OT.Trace = true;
  auto On = F2.launch(OT);
  trace::endSession();
  ASSERT_TRUE(static_cast<bool>(On)) << On.status().message();

  EXPECT_EQ(Off->Counters.SubkernelCycles, On->Counters.SubkernelCycles);
  EXPECT_EQ(Off->Counters.YieldCycles, On->Counters.YieldCycles);
  EXPECT_EQ(Off->Counters.EMCycles, On->Counters.EMCycles);
  EXPECT_EQ(Off->Counters.Flops, On->Counters.Flops);
  EXPECT_EQ(Off->Counters.InstsExecuted, On->Counters.InstsExecuted);
  EXPECT_EQ(Off->Counters.VectorInsts, On->Counters.VectorInsts);
  EXPECT_EQ(Off->Counters.RestoredValues, On->Counters.RestoredValues);
  EXPECT_EQ(Off->Counters.SpilledValues, On->Counters.SpilledValues);
  EXPECT_EQ(Off->Counters.GlobalAccesses, On->Counters.GlobalAccesses);
  EXPECT_EQ(Off->Counters.GlobalMisses, On->Counters.GlobalMisses);
  EXPECT_EQ(Off->MaxWorkerCycles, On->MaxWorkerCycles);
  EXPECT_EQ(Off->ModeledSeconds, On->ModeledSeconds);
  EXPECT_EQ(Off->EntriesByWidth, On->EntriesByWidth);
  EXPECT_EQ(Off->WarpEntries, On->WarpEntries);
  EXPECT_EQ(Off->ThreadEntries, On->ThreadEntries);
  EXPECT_EQ(Off->BranchYields, On->BranchYields);
  EXPECT_EQ(Off->BarrierYields, On->BarrierYields);
  EXPECT_EQ(Off->ExitYields, On->ExitYields);
}

TEST(TraceTest, BufferOverflowDropsNewest) {
  // Tiny sessions still share the process-wide buffers sized at process
  // start, so overflow is exercised by recording more events than the
  // configured capacity only when the env var shrank it; here we just
  // assert the Dropped accounting is exposed and zero under light load.
  trace::startSession();
  for (int I = 0; I < 100; ++I)
    trace::instant("overflow_probe", "test", static_cast<uint64_t>(I), "i");
  trace::endSession();
  uint64_t Seen = 0;
  for (const trace::ThreadEvents &TE : trace::collect())
    for (const trace::Event &E : TE.Events)
      if (std::string(E.Name) == "overflow_probe")
        ++Seen;
  EXPECT_EQ(Seen, 100u);
}

} // namespace
