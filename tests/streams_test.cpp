//===- tests/streams_test.cpp - Asynchronous stream execution tests -------===//
//
// Part of SIMTVec (CGO 2012 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Stream/event subsystem coverage: concurrent streams from concurrent host
/// threads must produce bit-identical results and settled modeled counters
/// to serial execution (the guarded-shape kernel touches every engine
/// path); ops on one stream run in submission order; events order streams
/// against each other; async errors are deferred to synchronize(); and the
/// blocking launch wrapper returns bit-identical stats to the async path.
/// Runs under SIMTVEC_SANITIZE=thread via tools/tsan_check.sh.
///
//===----------------------------------------------------------------------===//

#include "simtvec/runtime/Runtime.h"

#include "ShapeKernelSrc.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

using namespace simtvec;

namespace {

struct ShapeResult {
  LaunchStats Stats;
  std::vector<std::byte> Arena;
};

constexpr size_t ShapeArenaBytes = 1 << 16;

/// Allocates the shape kernel's buffers on a fresh device; returns (out,
/// acc) addresses.
std::pair<uint64_t, uint64_t> allocShapeBuffers(Device &Dev) {
  uint64_t Out = Dev.alloc(1024);
  uint64_t Acc = Dev.alloc(16);
  Dev.memset(Out, 0, 1024);
  Dev.memset(Acc, 0, 16);
  return {Out, Acc};
}

ShapeResult runShapesBlocking(Program &Prog, const LaunchOptions &O) {
  Device Dev(ShapeArenaBytes);
  auto [Out, Acc] = allocShapeBuffers(Dev);
  Params P;
  P.u64(Out).u64(Acc);
  auto S = Prog.launch(Dev, "shapes", {2, 1, 1}, {32, 1, 1}, P, O);
  EXPECT_TRUE(static_cast<bool>(S)) << S.status().message();
  ShapeResult R;
  if (S)
    R.Stats = *S;
  R.Arena.assign(Dev.data(), Dev.data() + Dev.size());
  return R;
}

/// Results and settled modeled counters must be bit-identical regardless of
/// which streams, pool threads, or host threads ran the launch.
void expectMatchesReference(const ShapeResult &Got, const ShapeResult &Ref) {
  ASSERT_EQ(Got.Arena.size(), Ref.Arena.size());
  EXPECT_EQ(0,
            std::memcmp(Got.Arena.data(), Ref.Arena.data(), Got.Arena.size()));
  EXPECT_EQ(Got.Stats.Counters.SubkernelCycles,
            Ref.Stats.Counters.SubkernelCycles);
  EXPECT_EQ(Got.Stats.Counters.YieldCycles, Ref.Stats.Counters.YieldCycles);
  EXPECT_EQ(Got.Stats.Counters.EMCycles, Ref.Stats.Counters.EMCycles);
  EXPECT_EQ(Got.Stats.Counters.InstsExecuted,
            Ref.Stats.Counters.InstsExecuted);
  EXPECT_EQ(Got.Stats.Counters.Flops, Ref.Stats.Counters.Flops);
  EXPECT_EQ(Got.Stats.MaxWorkerCycles, Ref.Stats.MaxWorkerCycles);
  EXPECT_EQ(Got.Stats.EntriesByWidth, Ref.Stats.EntriesByWidth);
  EXPECT_EQ(Got.Stats.WarpEntries, Ref.Stats.WarpEntries);
  EXPECT_EQ(Got.Stats.ThreadEntries, Ref.Stats.ThreadEntries);
  EXPECT_EQ(Got.Stats.BranchYields, Ref.Stats.BranchYields);
  EXPECT_EQ(Got.Stats.BarrierYields, Ref.Stats.BarrierYields);
  EXPECT_EQ(Got.Stats.ExitYields, Ref.Stats.ExitYields);
}

TEST(Streams, ConcurrentStreamsMatchSerialExecution) {
  auto Prog = Program::compile(ShapeCoverageSrc).take();
  LaunchOptions O; // default: persistent pool, Machine.Cores workers
  ShapeResult Ref = runShapesBlocking(*Prog, O);

  constexpr int NumStreams = 4;
  constexpr int Reps = 8;
  std::vector<std::thread> Hosts;
  Hosts.reserve(NumStreams);
  for (int T = 0; T < NumStreams; ++T)
    Hosts.emplace_back([&] {
      // Each host thread drives its own stream against its own device; all
      // of them share the program's sharded translation cache and the
      // process-wide worker pool.
      Device Dev(ShapeArenaBytes);
      Stream S;
      auto [Out, Acc] = allocShapeBuffers(Dev);
      Params P;
      P.u64(Out).u64(Acc);
      for (int R = 0; R < Reps; ++R) {
        // Same buffer addresses as the reference run; reset their contents
        // so every rep reproduces the reference arena byte-for-byte.
        Dev.memset(Out, 0, 1024);
        Dev.memset(Acc, 0, 16);
        LaunchFuture F =
            Prog->launchAsync(S, Dev, "shapes", {2, 1, 1}, {32, 1, 1}, P, O);
        Status E = S.synchronize();
        EXPECT_FALSE(E.isError()) << E.message();
        auto StatsOrErr = F.get();
        ASSERT_TRUE(static_cast<bool>(StatsOrErr))
            << StatsOrErr.status().message();
        ShapeResult Got;
        Got.Stats = *StatsOrErr;
        Got.Arena.assign(Dev.data(), Dev.data() + Dev.size());
        expectMatchesReference(Got, Ref);
      }
    });
  for (std::thread &H : Hosts)
    H.join();
}

TEST(JitHotSwap, SwapUnderConcurrentStreamsMatchesInterpreter) {
  // Tiered-auto launches on four concurrent streams while the background
  // JIT compiles and hot-swaps the shared executables' entry points:
  // in-flight dispatch loops pick the native tier up mid-run through the
  // release/acquire entry-pointer publication, and every launch's outputs
  // and modeled stats must still match the pinned-interpreter reference
  // bit for bit. The TSan gate runs this suite to prove the swap is clean
  // under concurrency; without a host toolchain the compile never lands
  // and the test degenerates to the plain concurrent-streams check.
  auto Prog = Program::compile(ShapeCoverageSrc).take();
  LaunchOptions Interp;
  Interp.Jit = JitMode::Interp;
  ShapeResult Ref = runShapesBlocking(*Prog, Interp);

  LaunchOptions O;
  O.Jit = JitMode::Auto; // interpret now, hot-swap when the compile lands
  constexpr int NumStreams = 4;
  constexpr int Reps = 8;
  std::vector<std::thread> Hosts;
  Hosts.reserve(NumStreams);
  for (int T = 0; T < NumStreams; ++T)
    Hosts.emplace_back([&] {
      Device Dev(ShapeArenaBytes);
      Stream S;
      auto [Out, Acc] = allocShapeBuffers(Dev);
      Params P;
      P.u64(Out).u64(Acc);
      for (int R = 0; R < Reps; ++R) {
        Dev.memset(Out, 0, 1024);
        Dev.memset(Acc, 0, 16);
        LaunchFuture F =
            Prog->launchAsync(S, Dev, "shapes", {2, 1, 1}, {32, 1, 1}, P, O);
        Status E = S.synchronize();
        EXPECT_FALSE(E.isError()) << E.message();
        auto StatsOrErr = F.get();
        ASSERT_TRUE(static_cast<bool>(StatsOrErr))
            << StatsOrErr.status().message();
        ShapeResult Got;
        Got.Stats = *StatsOrErr;
        Got.Arena.assign(Dev.data(), Dev.data() + Dev.size());
        expectMatchesReference(Got, Ref);
      }
    });
  for (std::thread &H : Hosts)
    H.join();
}

const char *ScaleSrc = R"(
.kernel scale (.param .u64 buf, .param .u32 n)
{
  .reg .u32 %i, %n, %v;
  .reg .u64 %p, %off;
  .reg .pred %q;
entry:
  mov.u32 %i, %tid.x;
  mov.u32 %n, %ntid.x;
  mul.u32 %n, %n, %ctaid.x;
  add.u32 %i, %i, %n;
  ld.param.u32 %n, [n];
  setp.ge.u32 %q, %i, %n;
  @%q bra done, body;
body:
  cvt.u64.u32 %off, %i;
  shl.u64 %off, %off, 2;
  ld.param.u64 %p, [buf];
  add.u64 %p, %p, %off;
  ld.global.u32 %v, [%p];
  mad.u32 %v, %v, 2, 1;
  st.global.u32 [%p], %v;
  bra done;
done:
  ret;
}
)";

TEST(Streams, OpsOnOneStreamRunInSubmissionOrder) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  constexpr uint32_t N = 1000;
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> In(N), Out(N, 0);
  for (uint32_t I = 0; I < N; ++I)
    In[I] = I * 3 + 7;

  Params P;
  P.u64(D).u32(N);
  Stream S;
  Dev.copyToDeviceAsync(S, D, In.data(), N * sizeof(uint32_t));
  LaunchFuture F =
      Prog->launchAsync(S, Dev, "scale", {(N + 63) / 64, 1, 1}, {64, 1, 1}, P);
  Dev.copyFromDeviceAsync(S, Out.data(), D, N * sizeof(uint32_t));
  Status E = S.synchronize();
  ASSERT_FALSE(E.isError()) << E.message();
  EXPECT_TRUE(F.ready());
  EXPECT_FALSE(F.wait().isError());
  for (uint32_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], In[I] * 2 + 1) << "element " << I;
}

TEST(Streams, EventsOrderWorkAcrossStreams) {
  auto Prog = Program::compile(ScaleSrc).take();
  Device Dev(1 << 20);
  constexpr uint32_t N = 512;
  uint64_t D = Dev.allocArray<uint32_t>(N);
  std::vector<uint32_t> In(N, 5), Out(N, 0);

  Params P;
  P.u64(D).u32(N);
  Stream A, B;
  Event Launched;
  Dev.copyToDeviceAsync(A, D, In.data(), N * sizeof(uint32_t));
  Prog->launchAsync(A, Dev, "scale", {(N + 63) / 64, 1, 1}, {64, 1, 1}, P);
  Launched.record(A);

  // B's copy must observe A's completed launch, even though B is
  // synchronized first.
  B.waitEvent(Launched);
  Dev.copyFromDeviceAsync(B, Out.data(), D, N * sizeof(uint32_t));
  Status EB = B.synchronize();
  ASSERT_FALSE(EB.isError()) << EB.message();
  for (uint32_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], 11u) << "element " << I;

  EXPECT_TRUE(Launched.query());
  EXPECT_FALSE(Launched.wait().isError());
  EXPECT_FALSE(A.synchronize().isError());
}

TEST(Streams, UnrecordedEventCountsAsComplete) {
  Event Never;
  EXPECT_TRUE(Never.query());
  EXPECT_FALSE(Never.wait().isError());
  Stream S;
  S.waitEvent(Never); // must not wedge the stream
  EXPECT_FALSE(S.synchronize().isError());
}

TEST(Streams, AsyncErrorsAreDeferredToSynchronize) {
  auto Prog = Program::compile(ShapeCoverageSrc).take();
  Device Dev(ShapeArenaBytes);
  auto [Out, Acc] = allocShapeBuffers(Dev);
  Params P;
  P.u64(Out).u64(Acc);

  Stream S;
  LaunchOptions Bad;
  Bad.MaxWarpSize = 3;
  LaunchFuture F =
      Prog->launchAsync(S, Dev, "shapes", {2, 1, 1}, {32, 1, 1}, P, Bad);
  auto R = F.get();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.status().message().find("power of two"), std::string::npos);
  Status E = S.synchronize();
  ASSERT_TRUE(E.isError());
  EXPECT_NE(E.message().find("power of two"), std::string::npos);
  // The deferred error is cleared once reported.
  EXPECT_FALSE(S.synchronize().isError());

  // An out-of-range async copy becomes the stream's deferred error too.
  std::vector<std::byte> Host(64);
  Dev.copyFromDeviceAsync(S, Host.data(), Dev.size() - 8, Host.size());
  Status E2 = S.synchronize();
  ASSERT_TRUE(E2.isError());
  EXPECT_NE(E2.message().find("out of range"), std::string::npos);
}

TEST(Streams, BlockingLaunchMatchesAsyncStatsBitIdentically) {
  auto Prog = Program::compile(ShapeCoverageSrc).take();
  LaunchOptions O;
  ShapeResult Blocking = runShapesBlocking(*Prog, O);

  Device Dev(ShapeArenaBytes);
  auto [Out, Acc] = allocShapeBuffers(Dev);
  Params P;
  P.u64(Out).u64(Acc);
  Stream S;
  LaunchFuture F =
      Prog->launchAsync(S, Dev, "shapes", {2, 1, 1}, {32, 1, 1}, P, O);
  ASSERT_FALSE(S.synchronize().isError());
  auto StatsOrErr = F.get();
  ASSERT_TRUE(static_cast<bool>(StatsOrErr));
  ShapeResult Async;
  Async.Stats = *StatsOrErr;
  Async.Arena.assign(Dev.data(), Dev.data() + Dev.size());
  expectMatchesReference(Async, Blocking);

  // And the per-launch spawn engine (pool off) agrees as well: the modeled
  // counters are dispatch-invariant.
  LaunchOptions Spawn;
  Spawn.UsePersistentPool = false;
  expectMatchesReference(runShapesBlocking(*Prog, Spawn), Blocking);
}

} // namespace
